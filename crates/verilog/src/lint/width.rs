//! Pass 3 — bit-width inference and mismatch detection.
//!
//! Widths are inferred bottom-up over the arena-allocated [`Expr`] tree
//! with parameter constant-folding; anything that cannot be folded is
//! `None` and never warns. The pass is deliberately truncation-only:
//! implicit zero/sign extension (`assign wide = narrow;`) is idiomatic
//! Verilog, while silently dropping bits (`assign narrow = wide_expr;`) is
//! the defect class worth surfacing. Unsized literals adapt to their
//! context and are skipped — except directly inside concatenations, where
//! their width is genuinely ambiguous.

use crate::ast::{BinaryOp, Expr, ExprArena, ExprId, PortDirection, Statement, UnaryOp};
use crate::intern::Symbol;

use super::model::{const_eval, lvalue_targets, AssignTarget};
use super::{diag, LintDiagnostic, ModuleModel, RuleId};

pub(crate) fn check(model: &ModuleModel<'_>, out: &mut Vec<LintDiagnostic>) {
    let arena = model.arena();
    // Continuous assignments (including net initialisers).
    for &(target, value) in &model.continuous_assigns {
        check_assignment(model, target, value, "assign", out);
        check_concats(arena, value, "assign", out);
    }
    // Procedural assignments.
    for (index, block) in model.always_blocks.iter().enumerate() {
        let locus = format!("always #{index}");
        walk_statements(&block.body, &mut |s| {
            if let Statement::Blocking { target, value }
            | Statement::NonBlocking { target, value } = s
            {
                check_assignment(model, AssignTarget::Expr(*target), *value, &locus, out);
                check_concats(arena, *value, &locus, out);
            }
        });
    }
    // Port connections of resolved instances.
    for inst in &model.instances {
        if inst.target.is_none() {
            continue;
        }
        let locus = format!("instance '{}'", model.resolve(inst.instance.name));
        for conn in &inst.connections {
            let (Some(expr), Some(port_width)) = (conn.expr, conn.port_width) else {
                continue;
            };
            let Some(conn_width) = infer_width(model, expr) else {
                continue;
            };
            let lossy = match conn.direction {
                PortDirection::Input => conn_width > port_width,
                PortDirection::Output => port_width > conn_width,
                PortDirection::Inout => false,
            };
            if lossy {
                out.push(diag(
                    RuleId::WidthMismatch,
                    locus.clone(),
                    format!(
                        "port '{}' is {port_width} bits but its connection is {conn_width} bits",
                        conn.port_name
                    ),
                ));
            }
        }
    }
}

fn check_assignment(
    model: &ModuleModel<'_>,
    target: AssignTarget,
    value: ExprId,
    locus: &str,
    out: &mut Vec<LintDiagnostic>,
) {
    let lhs_width = match target {
        AssignTarget::Expr(id) => lvalue_width(model, id),
        AssignTarget::Net(sym) => symbol_lvalue_width(model, sym),
    };
    let (Some(lhs), Some(rhs)) = (lhs_width, infer_width(model, value)) else {
        return;
    };
    if rhs > lhs {
        let name = match target {
            AssignTarget::Net(sym) => model.resolve(sym),
            AssignTarget::Expr(id) => lvalue_targets(model.arena(), id)
                .first()
                .map(|&(sym, _)| model.resolve(sym))
                .unwrap_or("?"),
        };
        out.push(diag(
            RuleId::WidthMismatch,
            format!("{locus}, net '{name}'"),
            format!("assignment truncates a {rhs}-bit value into {lhs} bits"),
        ));
    }
}

/// Flags unsized literals appearing directly inside a concatenation, whose
/// width is ambiguous (illegal in strict Verilog, silently 32 bits in most
/// tools).
fn check_concats(arena: &ExprArena, expr: ExprId, locus: &str, out: &mut Vec<LintDiagnostic>) {
    match arena[expr] {
        Expr::Concat(ref parts) => {
            for &part in parts {
                if matches!(
                    arena[part],
                    Expr::Number { width: None, .. } | Expr::Pattern { width: None, .. }
                ) {
                    out.push(diag(
                        RuleId::WidthMismatch,
                        locus.to_string(),
                        "unsized literal inside a concatenation has ambiguous width".to_string(),
                    ));
                }
                check_concats(arena, part, locus, out);
            }
        }
        Expr::Unary { operand, .. } => check_concats(arena, operand, locus, out),
        Expr::Binary { lhs, rhs, .. } => {
            check_concats(arena, lhs, locus, out);
            check_concats(arena, rhs, locus, out);
        }
        Expr::Ternary {
            condition,
            then_expr,
            else_expr,
        } => {
            check_concats(arena, condition, locus, out);
            check_concats(arena, then_expr, locus, out);
            check_concats(arena, else_expr, locus, out);
        }
        Expr::Index { base, index } => {
            check_concats(arena, base, locus, out);
            check_concats(arena, index, locus, out);
        }
        Expr::Slice { base, .. } => check_concats(arena, base, locus, out),
        Expr::Repeat { value, .. } => check_concats(arena, value, locus, out),
        Expr::Call { ref args, .. } => {
            for &a in args {
                check_concats(arena, a, locus, out);
            }
        }
        _ => {}
    }
}

/// Width of a whole-net target (net initialisers, identifiers).
fn symbol_lvalue_width(model: &ModuleModel<'_>, sym: Symbol) -> Option<u32> {
    let info = model.symbol(sym)?;
    if info.is_array {
        return None;
    }
    model.symbol_width(sym)
}

/// Width of an assignment target.
pub(crate) fn lvalue_width(model: &ModuleModel<'_>, target: ExprId) -> Option<u32> {
    let arena = model.arena();
    match arena[target] {
        Expr::Ident(sym) => symbol_lvalue_width(model, sym),
        Expr::Index { base, .. } => match arena[base] {
            Expr::Ident(sym) if model.symbol(sym).is_some_and(|s| s.is_array) => {
                model.symbol_width(sym)
            }
            _ => Some(1),
        },
        Expr::Slice { msb, lsb, .. } => {
            let msb = const_eval(arena, msb, &model.params)?;
            let lsb = const_eval(arena, lsb, &model.params)?;
            u32::try_from(msb.abs_diff(lsb) + 1).ok()
        }
        Expr::Concat(ref parts) => {
            let mut total = 0u32;
            for &p in parts {
                total = total.checked_add(lvalue_width(model, p)?)?;
            }
            Some(total)
        }
        _ => None,
    }
}

/// Bottom-up width inference; `None` means "unknown", which never warns.
pub(crate) fn infer_width(model: &ModuleModel<'_>, expr: ExprId) -> Option<u32> {
    let arena = model.arena();
    match arena[expr] {
        Expr::Number { width, .. } | Expr::Pattern { width, .. } => width,
        Expr::Ident(sym) => symbol_lvalue_width(model, sym),
        Expr::Unary { op, operand } => match op {
            UnaryOp::Not
            | UnaryOp::ReduceAnd
            | UnaryOp::ReduceOr
            | UnaryOp::ReduceXor
            | UnaryOp::ReduceNand
            | UnaryOp::ReduceNor
            | UnaryOp::ReduceXnor => Some(1),
            UnaryOp::BitNot | UnaryOp::Negate | UnaryOp::Plus => infer_width(model, operand),
        },
        Expr::Binary { op, lhs, rhs } => match op {
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::CaseEq
            | BinaryOp::CaseNeq
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge
            | BinaryOp::LogicalAnd
            | BinaryOp::LogicalOr => Some(1),
            BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShl | BinaryOp::AShr => {
                infer_width(model, lhs)
            }
            BinaryOp::Pow => None,
            BinaryOp::Add
            | BinaryOp::Sub
            | BinaryOp::Mul
            | BinaryOp::Div
            | BinaryOp::Mod
            | BinaryOp::And
            | BinaryOp::Or
            | BinaryOp::Xor
            | BinaryOp::Xnor => {
                let a = infer_width(model, lhs)?;
                let b = infer_width(model, rhs)?;
                Some(a.max(b))
            }
        },
        Expr::Ternary {
            then_expr,
            else_expr,
            ..
        } => {
            let a = infer_width(model, then_expr)?;
            let b = infer_width(model, else_expr)?;
            Some(a.max(b))
        }
        Expr::Index { base, .. } => match arena[base] {
            Expr::Ident(sym) if model.symbol(sym).is_some_and(|s| s.is_array) => {
                model.symbol_width(sym)
            }
            _ => Some(1),
        },
        Expr::Slice { msb, lsb, .. } => {
            let msb = const_eval(arena, msb, &model.params)?;
            let lsb = const_eval(arena, lsb, &model.params)?;
            u32::try_from(msb.abs_diff(lsb) + 1).ok()
        }
        Expr::Concat(ref parts) => {
            let mut total = 0u32;
            for &p in parts {
                total = total.checked_add(infer_width(model, p)?)?;
            }
            Some(total)
        }
        Expr::Repeat { count, value } => {
            let count = u32::try_from(const_eval(arena, count, &model.params)?).ok()?;
            let value = infer_width(model, value)?;
            count.checked_mul(value)
        }
        Expr::Call { .. } | Expr::StringLit(_) => None,
    }
}

/// Depth-first walk over a statement tree.
pub(crate) fn walk_statements<'a>(statement: &'a Statement, f: &mut impl FnMut(&'a Statement)) {
    f(statement);
    match statement {
        Statement::Block(stmts) => {
            for s in stmts {
                walk_statements(s, f);
            }
        }
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_statements(then_branch, f);
            if let Some(e) = else_branch {
                walk_statements(e, f);
            }
        }
        Statement::Case { arms, .. } => {
            for arm in arms {
                walk_statements(&arm.body, f);
            }
        }
        Statement::For {
            init, step, body, ..
        } => {
            walk_statements(init, f);
            walk_statements(step, f);
            walk_statements(body, f);
        }
        _ => {}
    }
}
