//! Pass 2 — driver analysis.
//!
//! Uses the per-net [`super::model::DriveInfo`] summaries to find nets with
//! conflicting drivers, outputs nothing drives, and regs written from more
//! than one `always` block.

use crate::ast::PortDirection;

use super::model::SymbolKind;
use super::{diag, LintDiagnostic, ModuleModel, RuleId};

pub(crate) fn check(model: &ModuleModel<'_>, out: &mut Vec<LintDiagnostic>) {
    for &sym in &model.symbol_order {
        let info = model
            .symbol(sym)
            .expect("symbol_order entries are declared");
        if info.kind != SymbolKind::Net {
            continue;
        }
        let name = model.resolve(sym);
        let Some(drive) = model.drive(sym) else {
            // Nothing drives the net at all.
            if info.direction == Some(PortDirection::Output) {
                out.push(undriven(name));
            }
            continue;
        };
        // Conflicting drivers. Partial continuous drives (different slices
        // of one bus) are legal and stay unflagged; two whole-net
        // continuous drivers, or a continuous driver next to procedural
        // assignments, always conflict.
        let continuous = drive.continuous_whole;
        if continuous >= 2 {
            out.push(diag(
                RuleId::MultiplyDriven,
                format!("net '{name}'"),
                format!("'{name}' has {continuous} whole-net continuous drivers"),
            ));
        } else if continuous == 1 && !drive.always_blocks.is_empty() {
            out.push(diag(
                RuleId::MultiplyDriven,
                format!("net '{name}'"),
                format!("'{name}' is driven both continuously and from an always block"),
            ));
        }
        // Reg written from several always blocks.
        if drive.always_blocks.len() >= 2 {
            out.push(diag(
                RuleId::RegMultiAlways,
                format!("net '{name}'"),
                format!(
                    "'{name}' is assigned in {} different always blocks",
                    drive.always_blocks.len()
                ),
            ));
        }
        // Undriven outputs (unresolved-instance connections count as
        // drivers, keeping multi-file designs quiet).
        if info.direction == Some(PortDirection::Output) && !drive.is_driven() {
            out.push(undriven(name));
        }
    }
}

fn undriven(name: &str) -> LintDiagnostic {
    diag(
        RuleId::UndrivenOutput,
        format!("port '{name}'"),
        format!("output port '{name}' is never driven"),
    )
}
