//! Pass 6 — clock/reset-domain inference and clock-domain-crossing (CDC)
//! analysis.
//!
//! Every edge-triggered `always` block is classified into a *domain*: the
//! clock symbol and edge that advance it, plus any asynchronous resets
//! (edge-listed signals whose polarity is tested by the block's leading
//! `if` chain). The inference is purely structural — it never looks at
//! names, so `rst`, `rst_n` and `arst` are all recognised by shape alone.
//!
//! Four rules are derived from the per-block domains:
//!
//! - [`RuleId::MixedClockEdge`] — one clock symbol drives blocks on both
//!   `posedge` and `negedge`.
//! - [`RuleId::AsyncResetPolarity`] — a reset's sensitivity edge
//!   contradicts the polarity its reset branch tests (a `negedge` reset
//!   whose branch runs when the signal is *high* can never fire), or the
//!   same reset is edge-listed with different edges across blocks.
//! - [`RuleId::MixedResetStyle`] — a signal used as an async reset in one
//!   block gates the leading `if` of another block synchronously.
//! - [`RuleId::UnsynchronizedCdc`] — a signal registered only in domain A
//!   is sampled by a block in domain B without a two-flop synchronizer
//!   chain (`meta <= sig; sync <= meta;` clocked by B).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{EdgeKind, Expr, ExprId, Statement};
use crate::intern::Symbol;

use super::model::{lvalue_targets, SymbolKind};
use super::width::walk_statements;
use super::{diag, LintDiagnostic, ModuleModel, RuleId};

/// The polarity a reset branch tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Polarity {
    /// Branch taken when the signal is 1 (`if (rst)`, `if (rst == 1)`).
    ActiveHigh,
    /// Branch taken when the signal is 0 (`if (!rst)`, `if (rst == 0)`).
    ActiveLow,
}

/// The inferred shape of one edge-triggered `always` block.
struct BlockDomain {
    /// Index into [`ModuleModel::always_blocks`].
    index: usize,
    /// The clock: the single edge entry left after reset extraction.
    clock: Option<(Symbol, EdgeKind)>,
    /// Async resets: `(signal, sensitivity edge, tested polarity)`.
    async_resets: Vec<(Symbol, EdgeKind, Polarity)>,
    /// A declared net tested by the leading `if` but absent from the
    /// sensitivity list — the synchronous-reset idiom.
    sync_reset: Option<Symbol>,
}

pub(crate) fn check(model: &ModuleModel<'_>, out: &mut Vec<LintDiagnostic>) {
    let domains: Vec<BlockDomain> = model
        .always_blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.sensitivity.is_edge_triggered())
        .map(|(index, block)| infer_domain(model, index, block))
        .collect();

    check_mixed_clock_edge(model, &domains, out);
    check_reset_polarity(model, &domains, out);
    check_mixed_reset_style(model, &domains, out);
    check_cdc(model, &domains, out);
}

/// Classifies one edge-triggered block into clock + resets.
fn infer_domain(
    model: &ModuleModel<'_>,
    index: usize,
    block: &crate::ast::AlwaysBlock,
) -> BlockDomain {
    let mut edges: Vec<(EdgeKind, Symbol)> = block
        .sensitivity
        .entries
        .iter()
        .filter(|(edge, _)| !matches!(edge, EdgeKind::Level))
        .copied()
        .collect();

    // With more than one edge entry, peel async resets off the leading
    // `if`/`else if` chain: each condition that tests the polarity of an
    // edge-listed signal claims that signal as a reset.
    let mut async_resets = Vec::new();
    if edges.len() > 1 {
        let mut stmt = unwrap_blocks(&block.body);
        while let Statement::If {
            condition,
            else_branch,
            ..
        } = stmt
        {
            let Some((sym, polarity)) = polarity_test(model, *condition) else {
                break;
            };
            let Some(pos) = edges.iter().position(|&(_, s)| s == sym) else {
                break;
            };
            let (edge, _) = edges.remove(pos);
            async_resets.push((sym, edge, polarity));
            match else_branch {
                Some(e) => stmt = unwrap_blocks(e),
                None => break,
            }
        }
    }

    let clock = (edges.len() == 1).then(|| {
        let (edge, sym) = edges[0];
        (sym, edge)
    });

    // The synchronous-reset idiom: a single-edge block whose leading `if`
    // tests a declared net that is not in the sensitivity list.
    let sync_reset = if block.sensitivity.entries.len() == 1 && async_resets.is_empty() {
        match unwrap_blocks(&block.body) {
            Statement::If { condition, .. } => polarity_test(model, *condition)
                .map(|(sym, _)| sym)
                .filter(|&sym| {
                    !block.sensitivity.entries.iter().any(|&(_, s)| s == sym)
                        && model
                            .symbol(sym)
                            .is_some_and(|info| info.kind == SymbolKind::Net)
                }),
            _ => None,
        }
    } else {
        None
    };

    BlockDomain {
        index,
        clock,
        async_resets,
        sync_reset,
    }
}

/// Strips single-statement `begin`/`end` nesting.
fn unwrap_blocks(stmt: &Statement) -> &Statement {
    let mut current = stmt;
    while let Statement::Block(stmts) = current {
        if stmts.len() != 1 {
            break;
        }
        current = &stmts[0];
    }
    current
}

/// Recognises the reset-condition shapes `r`, `!r`, `~r`, `r == 0/1` and
/// `r != 0/1`, returning the tested signal and the polarity under which
/// the branch is taken.
fn polarity_test(model: &ModuleModel<'_>, condition: ExprId) -> Option<(Symbol, Polarity)> {
    use crate::ast::{BinaryOp, UnaryOp};
    let arena = model.arena();
    match arena[condition] {
        Expr::Ident(sym) => Some((sym, Polarity::ActiveHigh)),
        Expr::Unary {
            op: UnaryOp::Not | UnaryOp::BitNot,
            operand,
        } => match arena[operand] {
            Expr::Ident(sym) => Some((sym, Polarity::ActiveLow)),
            _ => None,
        },
        Expr::Binary {
            op: op @ (BinaryOp::Eq | BinaryOp::Neq),
            lhs,
            rhs,
        } => {
            let (sym, value) = match (&arena[lhs], &arena[rhs]) {
                (&Expr::Ident(sym), &Expr::Number { value, .. }) => (sym, value),
                (&Expr::Number { value, .. }, &Expr::Ident(sym)) => (sym, value),
                _ => return None,
            };
            let truthy = (value != 0) == matches!(op, BinaryOp::Eq);
            Some((
                sym,
                if truthy {
                    Polarity::ActiveHigh
                } else {
                    Polarity::ActiveLow
                },
            ))
        }
        _ => None,
    }
}

fn check_mixed_clock_edge(
    model: &ModuleModel<'_>,
    domains: &[BlockDomain],
    out: &mut Vec<LintDiagnostic>,
) {
    let mut edges_by_clock: BTreeMap<usize, BTreeSet<EdgeKind>> = BTreeMap::new();
    let mut symbols: BTreeMap<usize, Symbol> = BTreeMap::new();
    for d in domains {
        if let Some((sym, edge)) = d.clock {
            edges_by_clock.entry(sym.index()).or_default().insert(edge);
            symbols.insert(sym.index(), sym);
        }
    }
    for (key, edges) in &edges_by_clock {
        if edges.contains(&EdgeKind::Posedge) && edges.contains(&EdgeKind::Negedge) {
            let name = model.resolve(symbols[key]);
            out.push(diag(
                RuleId::MixedClockEdge,
                format!("net '{name}'"),
                format!("'{name}' clocks some always blocks on posedge and others on negedge"),
            ));
        }
    }
}

fn check_reset_polarity(
    model: &ModuleModel<'_>,
    domains: &[BlockDomain],
    out: &mut Vec<LintDiagnostic>,
) {
    // Within a block: the sensitivity edge must agree with the tested
    // polarity — a posedge-listed reset branch must run on 1, a
    // negedge-listed one on 0. Otherwise the async branch can never be
    // entered by the event that wakes the block.
    for d in domains {
        for &(sym, edge, polarity) in &d.async_resets {
            let contradicts = matches!(
                (edge, polarity),
                (EdgeKind::Posedge, Polarity::ActiveLow)
                    | (EdgeKind::Negedge, Polarity::ActiveHigh)
            );
            if contradicts {
                let name = model.resolve(sym);
                let (edge_name, level) = match edge {
                    EdgeKind::Posedge => ("posedge", "low"),
                    _ => ("negedge", "high"),
                };
                out.push(diag(
                    RuleId::AsyncResetPolarity,
                    format!("always #{}, net '{name}'", d.index),
                    format!(
                        "'{name}' is listed as {edge_name} but its reset branch \
                         runs when it is {level}"
                    ),
                ));
            }
        }
    }
    // Across blocks: the same reset edge-listed with different edges.
    let mut edges_by_reset: BTreeMap<usize, BTreeSet<EdgeKind>> = BTreeMap::new();
    let mut symbols: BTreeMap<usize, Symbol> = BTreeMap::new();
    for d in domains {
        for &(sym, edge, _) in &d.async_resets {
            edges_by_reset.entry(sym.index()).or_default().insert(edge);
            symbols.insert(sym.index(), sym);
        }
    }
    for (key, edges) in &edges_by_reset {
        if edges.contains(&EdgeKind::Posedge) && edges.contains(&EdgeKind::Negedge) {
            let name = model.resolve(symbols[key]);
            out.push(diag(
                RuleId::AsyncResetPolarity,
                format!("net '{name}'"),
                format!("'{name}' is an async reset on posedge in one always block and negedge in another"),
            ));
        }
    }
}

fn check_mixed_reset_style(
    model: &ModuleModel<'_>,
    domains: &[BlockDomain],
    out: &mut Vec<LintDiagnostic>,
) {
    let mut async_resets: BTreeMap<usize, Symbol> = BTreeMap::new();
    let mut sync_resets: BTreeSet<usize> = BTreeSet::new();
    for d in domains {
        for &(sym, _, _) in &d.async_resets {
            async_resets.insert(sym.index(), sym);
        }
        if let Some(sym) = d.sync_reset {
            sync_resets.insert(sym.index());
        }
    }
    for (key, &sym) in &async_resets {
        if sync_resets.contains(key) {
            let name = model.resolve(sym);
            out.push(diag(
                RuleId::MixedResetStyle,
                format!("net '{name}'"),
                format!(
                    "'{name}' is an asynchronous reset in one always block and a \
                     synchronous reset in another"
                ),
            ));
        }
    }
}

fn check_cdc(model: &ModuleModel<'_>, domains: &[BlockDomain], out: &mut Vec<LintDiagnostic>) {
    let arena = model.arena();

    // Which clock symbols register each signal (non-blocking or blocking
    // targets of a clocked block).
    let mut registered_in: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    // Direct register copies `dst <= src` per clock domain — the raw
    // material of synchronizer chains.
    let mut copies: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for d in domains {
        let Some((clock, _)) = d.clock else { continue };
        let block = model.always_blocks[d.index];
        walk_statements(&block.body, &mut |s| {
            if let Statement::Blocking { target, value }
            | Statement::NonBlocking { target, value } = s
            {
                for (sym, _) in lvalue_targets(arena, *target) {
                    registered_in
                        .entry(sym.index())
                        .or_default()
                        .insert(clock.index());
                }
                if let (Expr::Ident(dst), Expr::Ident(src)) = (&arena[*target], &arena[*value]) {
                    copies
                        .entry(clock.index())
                        .or_default()
                        .push((dst.index(), src.index()));
                }
            }
        });
    }

    for d in domains {
        let Some((clock, _)) = d.clock else { continue };
        // Everything the block reads, minus its own clock and resets.
        let mut reads: BTreeSet<Symbol> = BTreeSet::new();
        let block = model.always_blocks[d.index];
        walk_statements(&block.body, &mut |s| {
            collect_statement_reads(arena, s, &mut reads);
        });
        reads.remove(&clock);
        for &(sym, _, _) in &d.async_resets {
            reads.remove(&sym);
        }

        let mut offenders: Vec<(&str, &str)> = Vec::new();
        for &sym in &reads {
            let Some(sources) = registered_in.get(&sym.index()) else {
                continue; // Inputs and combinational nets: no home domain.
            };
            if sources.contains(&clock.index()) {
                continue; // Registered in this block's own domain.
            }
            if has_sync_chain(copies.get(&clock.index()), sym.index()) {
                continue; // A two-flop synchronizer exists in this domain.
            }
            let Some(&source) = sources.iter().next() else {
                continue;
            };
            // Resolve the source clock's name for the message.
            let source_name = domains
                .iter()
                .filter_map(|o| o.clock)
                .find(|(c, _)| c.index() == source)
                .map(|(c, _)| model.resolve(c))
                .unwrap_or("?");
            offenders.push((model.resolve(sym), source_name));
        }
        offenders.sort_unstable();
        for (name, source_clock) in offenders {
            out.push(diag(
                RuleId::UnsynchronizedCdc,
                format!("always #{}, net '{name}'", d.index),
                format!(
                    "'{name}' is registered in the '{source_clock}' clock domain but \
                     sampled in the '{}' domain without a 2-FF synchronizer",
                    model.resolve(clock)
                ),
            ));
        }
    }
}

/// Whether `copies` (register copies of one domain) contains a chain
/// `first <= sym; second <= first;` — the canonical 2-FF synchronizer.
fn has_sync_chain(copies: Option<&Vec<(usize, usize)>>, sym: usize) -> bool {
    let Some(copies) = copies else { return false };
    copies
        .iter()
        .filter(|&&(_, src)| src == sym)
        .any(|&(first, _)| copies.iter().any(|&(_, src)| src == first))
}

/// Collects the symbols a single statement *reads*: right-hand sides,
/// conditions, case subjects and labels, and the index parts of assignment
/// targets. Child statements are not visited — the caller walks the tree.
fn collect_statement_reads(
    arena: &crate::ast::ExprArena,
    statement: &Statement,
    out: &mut BTreeSet<Symbol>,
) {
    let mut sink = Vec::new();
    match statement {
        Statement::Blocking { target, value } | Statement::NonBlocking { target, value } => {
            arena.collect_idents(*value, &mut sink);
            // Bit/part-select indices of the target are reads too; the
            // selected net itself is a write, not a read.
            collect_target_index_reads(arena, *target, &mut sink);
        }
        Statement::If { condition, .. } => arena.collect_idents(*condition, &mut sink),
        Statement::Case { subject, arms, .. } => {
            arena.collect_idents(*subject, &mut sink);
            for arm in arms {
                for &label in &arm.labels {
                    arena.collect_idents(label, &mut sink);
                }
            }
        }
        Statement::For { condition, .. } => arena.collect_idents(*condition, &mut sink),
        Statement::SystemCall { args, .. } => {
            for &a in args {
                arena.collect_idents(a, &mut sink);
            }
        }
        Statement::Block(_) | Statement::Empty => {}
    }
    out.extend(sink);
}

/// Collects the idents read by the *index* parts of an assignment target
/// (`mem[wptr]`, `bus[HI:LO]`), skipping the written base symbols.
fn collect_target_index_reads(
    arena: &crate::ast::ExprArena,
    target: crate::ast::ExprId,
    out: &mut Vec<Symbol>,
) {
    match &arena[target] {
        Expr::Ident(_) => {}
        Expr::Index { base, index } => {
            arena.collect_idents(*index, out);
            collect_target_index_reads(arena, *base, out);
        }
        Expr::Slice { base, msb, lsb } => {
            arena.collect_idents(*msb, out);
            arena.collect_idents(*lsb, out);
            collect_target_index_reads(arena, *base, out);
        }
        Expr::Concat(parts) => {
            for &p in parts {
                collect_target_index_reads(arena, p, out);
            }
        }
        _ => arena.collect_idents(target, out),
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::{Linter, RuleId};

    fn rules(source: &str) -> Vec<RuleId> {
        Linter::new()
            .lint_source(source)
            .expect("parse")
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn crossing_without_synchronizer_is_flagged() {
        let src = "module m(input clk_a, input clk_b, input d, output reg q);\n\
                   reg meta;\n\
                   always @(posedge clk_a) meta <= d;\n\
                   always @(posedge clk_b) q <= meta;\n\
                   endmodule\n";
        assert!(rules(src).contains(&RuleId::UnsynchronizedCdc));
    }

    #[test]
    fn two_flop_synchronizer_is_clean() {
        let src = "module m(input clk_a, input clk_b, input d, output reg q);\n\
                   reg src_ff;\n\
                   reg meta;\n\
                   reg sync;\n\
                   always @(posedge clk_a) src_ff <= d;\n\
                   always @(posedge clk_b) begin\n\
                   \tmeta <= src_ff;\n\
                   \tsync <= meta;\n\
                   \tq <= sync;\n\
                   end\n\
                   endmodule\n";
        assert!(!rules(src).contains(&RuleId::UnsynchronizedCdc));
    }

    #[test]
    fn single_domain_module_is_clean() {
        let src = "module m(input clk, input rst, input d, output reg q);\n\
                   always @(posedge clk) begin\n\
                   \tif (rst) q <= 1'b0;\n\
                   \telse q <= d;\n\
                   end\n\
                   endmodule\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn both_edges_of_one_clock_are_flagged() {
        let src = "module m(input clk, input d, output reg q, output reg p);\n\
                   always @(posedge clk) q <= d;\n\
                   always @(negedge clk) p <= d;\n\
                   endmodule\n";
        assert_eq!(rules(src), vec![RuleId::MixedClockEdge]);
    }

    #[test]
    fn async_reset_polarity_contradiction_is_flagged() {
        let src = "module m(input clk, input rst_n, input d, output reg q);\n\
                   always @(posedge clk or negedge rst_n) begin\n\
                   \tif (rst_n) q <= 1'b0;\n\
                   \telse q <= d;\n\
                   end\n\
                   endmodule\n";
        assert_eq!(rules(src), vec![RuleId::AsyncResetPolarity]);
    }

    #[test]
    fn consistent_async_reset_is_clean() {
        let src = "module m(input clk, input rst_n, input d, output reg q);\n\
                   always @(posedge clk or negedge rst_n) begin\n\
                   \tif (!rst_n) q <= 1'b0;\n\
                   \telse q <= d;\n\
                   end\n\
                   endmodule\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn mixed_reset_style_is_flagged() {
        let src = "module m(input clk, input rst, input d, output reg q, output reg p);\n\
                   always @(posedge clk or posedge rst) begin\n\
                   \tif (rst) q <= 1'b0;\n\
                   \telse q <= d;\n\
                   end\n\
                   always @(posedge clk) begin\n\
                   \tif (rst) p <= 1'b0;\n\
                   \telse p <= d;\n\
                   end\n\
                   endmodule\n";
        assert_eq!(rules(src), vec![RuleId::MixedResetStyle]);
    }

    #[test]
    fn sync_reset_everywhere_is_clean() {
        let src = "module m(input clk, input rst, input d, output reg q, output reg p);\n\
                   always @(posedge clk) begin\n\
                   \tif (rst) q <= 1'b0;\n\
                   \telse q <= d;\n\
                   end\n\
                   always @(posedge clk) begin\n\
                   \tif (rst) p <= 1'b0;\n\
                   \telse p <= d;\n\
                   end\n\
                   endmodule\n";
        assert!(rules(src).is_empty());
    }
}
