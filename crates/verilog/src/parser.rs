//! Recursive-descent parser for the supported Verilog subset.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::*;
use crate::lexer::{LexError, Lexer};
use crate::token::{Keyword, Token, TokenKind};

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            column: e.column,
        }
    }
}

/// Parses Verilog source into [`Module`] definitions.
///
/// # Example
///
/// ```
/// use verilog::Parser;
///
/// let src = "module inv(input a, output y); assign y = ~a; endmodule";
/// let modules = Parser::parse_source(src)?;
/// assert_eq!(modules[0].name, "inv");
/// assert_eq!(modules[0].ports.len(), 2);
/// # Ok::<(), verilog::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over pre-lexed tokens.
    pub fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    /// Lexes and parses a full source file into its modules.
    ///
    /// # Errors
    ///
    /// Returns the first lexing or parsing error encountered.
    pub fn parse_source(src: &str) -> Result<Vec<Module>, ParseError> {
        let tokens = Lexer::new(src).tokenize()?;
        Parser::new(tokens).parse_modules()
    }

    fn peek(&self) -> &TokenKind {
        self.tokens
            .get(self.pos)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn location(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line, t.column))
            .unwrap_or((0, 0))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.location();
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), TokenKind::Symbol(s) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{sym}`, found {}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.pos += 1;
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    /// Parses every module in the token stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on the first malformed construct.
    pub fn parse_modules(&mut self) -> Result<Vec<Module>, ParseError> {
        let mut modules = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => return Ok(modules),
                TokenKind::Keyword(Keyword::Module) => modules.push(self.parse_module()?),
                other => {
                    return Err(self.error(format!("expected `module`, found {other}")));
                }
            }
        }
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        self.expect_keyword(Keyword::Module)?;
        let name = self.expect_ident()?;
        let mut module = Module {
            name,
            ports: Vec::new(),
            items: Vec::new(),
        };

        // Optional parameter port list: #(parameter WIDTH = 8, ...)
        if self.eat_symbol("#") {
            self.expect_symbol("(")?;
            loop {
                if self.eat_symbol(")") {
                    break;
                }
                // `parameter` keyword is optional after the first entry.
                let _ = self.eat_keyword(Keyword::Parameter);
                // optional type-ish tokens (integer/signed/range)
                let _ = self.eat_keyword(Keyword::Integer);
                let _ = self.eat_keyword(Keyword::Signed);
                let _ = self.try_parse_range()?;
                let pname = self.expect_ident()?;
                self.expect_symbol("=")?;
                let value = self.parse_expr()?;
                module.items.push(ModuleItem::Parameter(Parameter {
                    name: pname,
                    value,
                    local: false,
                }));
                if !self.eat_symbol(",") {
                    self.expect_symbol(")")?;
                    break;
                }
            }
        }

        // Port list (ANSI or non-ANSI), optional.
        if self.eat_symbol("(") {
            self.parse_port_list(&mut module)?;
        }
        self.expect_symbol(";")?;

        // Body.
        loop {
            if self.eat_keyword(Keyword::Endmodule) {
                break;
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside module body"));
            }
            let items = self.parse_module_item()?;
            module.items.extend(items);
        }

        // Promote non-ANSI port declarations to ports, preserving header order.
        promote_non_ansi_ports(&mut module);
        Ok(module)
    }

    fn parse_port_list(&mut self, module: &mut Module) -> Result<(), ParseError> {
        if self.eat_symbol(")") {
            return Ok(());
        }
        // Distinguish ANSI (starts with a direction keyword) from non-ANSI
        // (bare identifiers).
        let mut current_direction: Option<PortDirection> = None;
        let mut current_range: Option<Range> = None;
        let mut current_is_reg = false;
        let mut current_signed = false;
        loop {
            match self.peek().clone() {
                TokenKind::Keyword(kw @ (Keyword::Input | Keyword::Output | Keyword::Inout)) => {
                    self.pos += 1;
                    current_direction = Some(match kw {
                        Keyword::Input => PortDirection::Input,
                        Keyword::Output => PortDirection::Output,
                        _ => PortDirection::Inout,
                    });
                    current_is_reg = self.eat_keyword(Keyword::Reg);
                    // `output wire` is also legal; swallow a wire keyword.
                    if !current_is_reg {
                        let _ = self.eat_keyword(Keyword::Wire);
                    }
                    current_signed = self.eat_keyword(Keyword::Signed);
                    current_range = self.try_parse_range()?;
                    let name = self.expect_ident()?;
                    module.ports.push(Port {
                        name,
                        direction: current_direction.unwrap(),
                        range: current_range.clone(),
                        is_reg: current_is_reg,
                        signed: current_signed,
                    });
                }
                TokenKind::Ident(name) => {
                    self.pos += 1;
                    if let Some(direction) = current_direction {
                        // Continuation of an ANSI group: `input a, b, c`.
                        module.ports.push(Port {
                            name,
                            direction,
                            range: current_range.clone(),
                            is_reg: current_is_reg,
                            signed: current_signed,
                        });
                    } else {
                        // Non-ANSI header: record the name; the direction
                        // arrives later in the body.
                        module.ports.push(Port {
                            name,
                            direction: PortDirection::Input,
                            range: None,
                            is_reg: false,
                            signed: false,
                        });
                    }
                }
                other => {
                    return Err(self.error(format!("expected port declaration, found {other}")))
                }
            }
            if self.eat_symbol(",") {
                continue;
            }
            self.expect_symbol(")")?;
            return Ok(());
        }
    }

    fn try_parse_range(&mut self) -> Result<Option<Range>, ParseError> {
        if !self.eat_symbol("[") {
            return Ok(None);
        }
        let msb = self.parse_expr()?;
        self.expect_symbol(":")?;
        let lsb = self.parse_expr()?;
        self.expect_symbol("]")?;
        Ok(Some(Range { msb, lsb }))
    }

    fn parse_module_item(&mut self) -> Result<Vec<ModuleItem>, ParseError> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Parameter) | TokenKind::Keyword(Keyword::Localparam) => {
                let local = matches!(self.peek(), TokenKind::Keyword(Keyword::Localparam));
                self.pos += 1;
                let _ = self.eat_keyword(Keyword::Integer);
                let _ = self.eat_keyword(Keyword::Signed);
                let _ = self.try_parse_range()?;
                let mut out = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    self.expect_symbol("=")?;
                    let value = self.parse_expr()?;
                    out.push(ModuleItem::Parameter(Parameter { name, value, local }));
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(";")?;
                Ok(out)
            }
            TokenKind::Keyword(
                kw @ (Keyword::Input
                | Keyword::Output
                | Keyword::Inout
                | Keyword::Wire
                | Keyword::Reg
                | Keyword::Integer
                | Keyword::Genvar),
            ) => {
                self.pos += 1;
                let direction = match kw {
                    Keyword::Input => Some(PortDirection::Input),
                    Keyword::Output => Some(PortDirection::Output),
                    Keyword::Inout => Some(PortDirection::Inout),
                    _ => None,
                };
                let mut kind = match kw {
                    Keyword::Reg => NetKind::Reg,
                    Keyword::Integer => NetKind::Integer,
                    Keyword::Genvar => NetKind::Genvar,
                    _ => NetKind::Wire,
                };
                if direction.is_some() {
                    if self.eat_keyword(Keyword::Reg) {
                        kind = NetKind::Reg;
                    } else if self.eat_keyword(Keyword::Wire) {
                        kind = NetKind::Wire;
                    }
                }
                let signed = self.eat_keyword(Keyword::Signed);
                let range = self.try_parse_range()?;
                let mut nets = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let array = self.try_parse_range()?;
                    let init = if self.eat_symbol("=") {
                        Some(self.parse_expr()?)
                    } else {
                        None
                    };
                    nets.push(Net {
                        name,
                        kind,
                        range: range.clone(),
                        array,
                        signed,
                        init,
                    });
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(";")?;
                Ok(vec![ModuleItem::Declaration(Declaration {
                    direction,
                    nets,
                })])
            }
            TokenKind::Keyword(Keyword::Assign) => {
                self.pos += 1;
                let mut out = Vec::new();
                loop {
                    let target = self.parse_expr()?;
                    self.expect_symbol("=")?;
                    let value = self.parse_expr()?;
                    out.push(ModuleItem::ContinuousAssign { target, value });
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(";")?;
                Ok(out)
            }
            TokenKind::Keyword(Keyword::Always) => {
                self.pos += 1;
                let sensitivity = self.parse_sensitivity()?;
                let body = self.parse_statement()?;
                Ok(vec![ModuleItem::Always(AlwaysBlock { sensitivity, body })])
            }
            TokenKind::Keyword(Keyword::Initial) => {
                self.pos += 1;
                let body = self.parse_statement()?;
                Ok(vec![ModuleItem::Initial(body)])
            }
            TokenKind::Keyword(Keyword::Generate) => {
                self.pos += 1;
                let mut inner = Vec::new();
                while !self.eat_keyword(Keyword::Endgenerate) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside generate region"));
                    }
                    inner.extend(self.parse_module_item()?);
                }
                Ok(vec![ModuleItem::Generate(inner)])
            }
            TokenKind::Keyword(Keyword::Function) | TokenKind::Keyword(Keyword::Task) => {
                // Functions/tasks are tolerated but skipped: consume tokens
                // until the matching end keyword.
                let is_function = matches!(self.peek(), TokenKind::Keyword(Keyword::Function));
                self.pos += 1;
                let end_kw = if is_function {
                    Keyword::Endfunction
                } else {
                    Keyword::Endtask
                };
                while !self.eat_keyword(end_kw) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside function/task"));
                    }
                    self.pos += 1;
                }
                Ok(vec![])
            }
            TokenKind::Ident(_) => {
                // Module instantiation: `name [#(...)] inst_name ( ... );`
                let inst = self.parse_instance()?;
                Ok(vec![ModuleItem::Instance(inst)])
            }
            other => Err(self.error(format!("unexpected {other} in module body"))),
        }
    }

    fn parse_instance(&mut self) -> Result<Instance, ParseError> {
        let module = self.expect_ident()?;
        let mut parameter_overrides = Vec::new();
        if self.eat_symbol("#") {
            self.expect_symbol("(")?;
            if !self.eat_symbol(")") {
                loop {
                    if self.eat_symbol(".") {
                        let pname = self.expect_ident()?;
                        self.expect_symbol("(")?;
                        let value = self.parse_expr()?;
                        self.expect_symbol(")")?;
                        parameter_overrides.push((pname, value));
                    } else {
                        let value = self.parse_expr()?;
                        parameter_overrides.push((String::new(), value));
                    }
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
            }
        }
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut named_connections = Vec::new();
        let mut ordered_connections = Vec::new();
        if !self.eat_symbol(")") {
            loop {
                if self.eat_symbol(".") {
                    let port = self.expect_ident()?;
                    self.expect_symbol("(")?;
                    if self.eat_symbol(")") {
                        named_connections.push((port, None));
                    } else {
                        let value = self.parse_expr()?;
                        self.expect_symbol(")")?;
                        named_connections.push((port, Some(value)));
                    }
                } else {
                    ordered_connections.push(self.parse_expr()?);
                }
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
        }
        self.expect_symbol(";")?;
        Ok(Instance {
            module,
            name,
            named_connections,
            ordered_connections,
            parameter_overrides,
        })
    }

    fn parse_sensitivity(&mut self) -> Result<SensitivityList, ParseError> {
        let mut list = SensitivityList::default();
        if !self.eat_symbol("@") {
            // `always` with no event control (e.g. `always begin ... end`) is
            // treated as combinational.
            list.star = true;
            return Ok(list);
        }
        if self.eat_symbol("*") {
            list.star = true;
            return Ok(list);
        }
        self.expect_symbol("(")?;
        if self.eat_symbol("*") {
            list.star = true;
            self.expect_symbol(")")?;
            return Ok(list);
        }
        loop {
            let edge = if self.eat_keyword(Keyword::Posedge) {
                EdgeKind::Posedge
            } else if self.eat_keyword(Keyword::Negedge) {
                EdgeKind::Negedge
            } else {
                EdgeKind::Level
            };
            let name = self.expect_ident()?;
            list.entries.push((edge, name));
            if self.eat_symbol(",") || self.eat_keyword(Keyword::Or) {
                continue;
            }
            self.expect_symbol(")")?;
            return Ok(list);
        }
    }

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Begin) => {
                self.pos += 1;
                // Optional block label `begin : name`.
                if self.eat_symbol(":") {
                    let _ = self.expect_ident()?;
                }
                let mut body = Vec::new();
                while !self.eat_keyword(Keyword::End) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside begin/end block"));
                    }
                    body.push(self.parse_statement()?);
                }
                Ok(Statement::Block(body))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.pos += 1;
                self.expect_symbol("(")?;
                let condition = self.parse_expr()?;
                self.expect_symbol(")")?;
                let then_branch = Box::new(self.parse_statement()?);
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_statement()?))
                } else {
                    None
                };
                Ok(Statement::If {
                    condition,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                self.pos += 1;
                let kind = match kw {
                    Keyword::Casez => CaseKind::Casez,
                    Keyword::Casex => CaseKind::Casex,
                    _ => CaseKind::Case,
                };
                self.expect_symbol("(")?;
                let subject = self.parse_expr()?;
                self.expect_symbol(")")?;
                let mut arms = Vec::new();
                while !self.eat_keyword(Keyword::Endcase) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside case statement"));
                    }
                    if self.eat_keyword(Keyword::Default) {
                        let _ = self.eat_symbol(":");
                        let body = self.parse_statement()?;
                        arms.push(CaseArm {
                            labels: vec![],
                            body,
                        });
                        continue;
                    }
                    let mut labels = vec![self.parse_expr()?];
                    while self.eat_symbol(",") {
                        labels.push(self.parse_expr()?);
                    }
                    self.expect_symbol(":")?;
                    let body = self.parse_statement()?;
                    arms.push(CaseArm { labels, body });
                }
                Ok(Statement::Case {
                    kind,
                    subject,
                    arms,
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.pos += 1;
                self.expect_symbol("(")?;
                let init = Box::new(self.parse_assignment_no_semi()?);
                self.expect_symbol(";")?;
                let condition = self.parse_expr()?;
                self.expect_symbol(";")?;
                let step = Box::new(self.parse_assignment_no_semi()?);
                self.expect_symbol(")")?;
                let body = Box::new(self.parse_statement()?);
                Ok(Statement::For {
                    init,
                    condition,
                    step,
                    body,
                })
            }
            TokenKind::Symbol(ref s) if s == ";" => {
                self.pos += 1;
                Ok(Statement::Empty)
            }
            TokenKind::Symbol(ref s) if s == "#" => {
                // Delay control `#10 statement` — skip the delay and parse the
                // controlled statement (testbench style code).
                self.pos += 1;
                let _ = self.parse_primary()?;
                self.parse_statement()
            }
            TokenKind::Symbol(ref s) if s == "@" => {
                // Event control inside a statement, e.g. `@(posedge clk) q = d;`
                let _ = self.parse_sensitivity()?;
                self.parse_statement()
            }
            TokenKind::Ident(name) if name.starts_with('$') => {
                self.pos += 1;
                let mut args = Vec::new();
                if self.eat_symbol("(") && !self.eat_symbol(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat_symbol(",") {
                            break;
                        }
                    }
                    self.expect_symbol(")")?;
                }
                self.expect_symbol(";")?;
                Ok(Statement::SystemCall { name, args })
            }
            _ => {
                let stmt = self.parse_assignment_no_semi()?;
                self.expect_symbol(";")?;
                Ok(stmt)
            }
        }
    }

    fn parse_assignment_no_semi(&mut self) -> Result<Statement, ParseError> {
        let target = self.parse_expr_no_comparison_shortcut()?;
        if self.eat_symbol("<=") {
            let value = self.parse_expr()?;
            Ok(Statement::NonBlocking { target, value })
        } else if self.eat_symbol("=") {
            let value = self.parse_expr()?;
            Ok(Statement::Blocking { target, value })
        } else {
            Err(self.error(format!("expected `=` or `<=`, found {}", self.peek())))
        }
    }

    /// Parses an assignment *target* expression: stops before `<=`/`=` so the
    /// statement parser can decide blocking vs non-blocking. Targets are
    /// primaries with optional selects or concatenations, so full precedence
    /// parsing is unnecessary (and would swallow `<=`).
    fn parse_expr_no_comparison_shortcut(&mut self) -> Result<Expr, ParseError> {
        self.parse_postfix()
    }

    // ----- expression parsing (precedence climbing) -----

    /// Parses a full expression.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the token stream is not an expression.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let condition = self.parse_logical_or()?;
        if self.eat_symbol("?") {
            let then_expr = self.parse_ternary()?;
            self.expect_symbol(":")?;
            let else_expr = self.parse_ternary()?;
            Ok(Expr::Ternary {
                condition: Box::new(condition),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(condition)
        }
    }

    fn parse_logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_logical_and()?;
        while self.eat_symbol("||") {
            let rhs = self.parse_logical_and()?;
            lhs = Expr::Binary {
                op: BinaryOp::LogicalOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_or()?;
        while self.eat_symbol("&&") {
            let rhs = self.parse_bit_or()?;
            lhs = Expr::Binary {
                op: BinaryOp::LogicalAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_xor()?;
        while matches!(self.peek(), TokenKind::Symbol(s) if s == "|") {
            self.pos += 1;
            let rhs = self.parse_bit_xor()?;
            lhs = Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_and()?;
        loop {
            let op = if self.eat_symbol("^") {
                BinaryOp::Xor
            } else if self.eat_symbol("~^") || self.eat_symbol("^~") {
                BinaryOp::Xnor
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_bit_and()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_equality()?;
        while matches!(self.peek(), TokenKind::Symbol(s) if s == "&") {
            self.pos += 1;
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = if self.eat_symbol("==") {
                BinaryOp::Eq
            } else if self.eat_symbol("!=") {
                BinaryOp::Neq
            } else if self.eat_symbol("===") {
                BinaryOp::CaseEq
            } else if self.eat_symbol("!==") {
                BinaryOp::CaseNeq
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_shift()?;
        loop {
            let op = if self.eat_symbol("<=") {
                BinaryOp::Le
            } else if self.eat_symbol(">=") {
                BinaryOp::Ge
            } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "<") {
                self.pos += 1;
                BinaryOp::Lt
            } else if matches!(self.peek(), TokenKind::Symbol(s) if s == ">") {
                self.pos += 1;
                BinaryOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_shift()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = if self.eat_symbol("<<<") {
                BinaryOp::AShl
            } else if self.eat_symbol(">>>") {
                BinaryOp::AShr
            } else if self.eat_symbol("<<") {
                BinaryOp::Shl
            } else if self.eat_symbol(">>") {
                BinaryOp::Shr
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = if matches!(self.peek(), TokenKind::Symbol(s) if s == "+") {
                self.pos += 1;
                BinaryOp::Add
            } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "-") {
                self.pos += 1;
                BinaryOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_power()?;
        loop {
            let op = if matches!(self.peek(), TokenKind::Symbol(s) if s == "*") {
                self.pos += 1;
                BinaryOp::Mul
            } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "/") {
                self.pos += 1;
                BinaryOp::Div
            } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "%") {
                self.pos += 1;
                BinaryOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_power()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_unary()?;
        if self.eat_symbol("**") {
            let rhs = self.parse_power()?;
            Ok(Expr::Binary {
                op: BinaryOp::Pow,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = if self.eat_symbol("!") {
            Some(UnaryOp::Not)
        } else if self.eat_symbol("~&") {
            Some(UnaryOp::ReduceNand)
        } else if self.eat_symbol("~|") {
            Some(UnaryOp::ReduceNor)
        } else if self.eat_symbol("~^") || self.eat_symbol("^~") {
            Some(UnaryOp::ReduceXnor)
        } else if self.eat_symbol("~") {
            Some(UnaryOp::BitNot)
        } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "-") {
            self.pos += 1;
            Some(UnaryOp::Negate)
        } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "+") {
            self.pos += 1;
            Some(UnaryOp::Plus)
        } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "&") {
            self.pos += 1;
            Some(UnaryOp::ReduceAnd)
        } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "|") {
            self.pos += 1;
            Some(UnaryOp::ReduceOr)
        } else if matches!(self.peek(), TokenKind::Symbol(s) if s == "^") {
            self.pos += 1;
            Some(UnaryOp::ReduceXor)
        } else {
            None
        };
        match op {
            Some(op) => {
                let operand = self.parse_unary()?;
                Ok(Expr::Unary {
                    op,
                    operand: Box::new(operand),
                })
            }
            None => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.eat_symbol("[") {
                let first = self.parse_expr()?;
                if self.eat_symbol(":") {
                    let lsb = self.parse_expr()?;
                    self.expect_symbol("]")?;
                    expr = Expr::Slice {
                        base: Box::new(expr),
                        msb: Box::new(first),
                        lsb: Box::new(lsb),
                    };
                } else if self.eat_symbol("+:") || self.eat_symbol("-:") {
                    // Indexed part selects are approximated as a slice with
                    // the same base/width information.
                    let width = self.parse_expr()?;
                    self.expect_symbol("]")?;
                    expr = Expr::Slice {
                        base: Box::new(expr),
                        msb: Box::new(first),
                        lsb: Box::new(width),
                    };
                } else {
                    self.expect_symbol("]")?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(first),
                    };
                }
            } else {
                return Ok(expr);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(text) => {
                self.pos += 1;
                let (value, width) = parse_number_literal(&text)
                    .ok_or_else(|| self.error(format!("invalid number literal `{text}`")))?;
                Ok(Expr::Number { value, width })
            }
            TokenKind::StringLit(s) => {
                self.pos += 1;
                Ok(Expr::StringLit(s))
            }
            TokenKind::Ident(name) => {
                self.pos += 1;
                if self.eat_symbol("(") {
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                        self.expect_symbol(")")?;
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::Symbol(ref s) if s == "(" => {
                self.pos += 1;
                let expr = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(expr)
            }
            TokenKind::Symbol(ref s) if s == "{" => {
                self.pos += 1;
                let first = self.parse_expr()?;
                if self.eat_symbol("{") {
                    // Replication {N{expr}}
                    let value = self.parse_expr()?;
                    self.expect_symbol("}")?;
                    self.expect_symbol("}")?;
                    return Ok(Expr::Repeat {
                        count: Box::new(first),
                        value: Box::new(value),
                    });
                }
                let mut parts = vec![first];
                while self.eat_symbol(",") {
                    parts.push(self.parse_expr()?);
                }
                self.expect_symbol("}")?;
                Ok(Expr::Concat(parts))
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Converts non-ANSI style modules (bare names in the header, directions
/// declared in the body) into fully-populated port lists.
fn promote_non_ansi_ports(module: &mut Module) {
    use std::collections::HashMap;
    let mut decls: HashMap<String, (PortDirection, Option<Range>, bool, bool)> = HashMap::new();
    for item in &module.items {
        if let ModuleItem::Declaration(decl) = item {
            if let Some(direction) = decl.direction {
                for net in &decl.nets {
                    decls.insert(
                        net.name.clone(),
                        (
                            direction,
                            net.range.clone(),
                            net.kind == NetKind::Reg,
                            net.signed,
                        ),
                    );
                }
            }
        }
    }
    for port in &mut module.ports {
        if let Some((direction, range, is_reg, signed)) = decls.get(&port.name) {
            port.direction = *direction;
            if port.range.is_none() {
                port.range = range.clone();
            }
            port.is_reg |= *is_reg;
            port.signed |= *signed;
        }
    }
}

/// Parses a Verilog number literal spelling into `(value, declared_width)`.
///
/// `x`, `z` and `?` digits are mapped to zero (two-state semantics).
pub fn parse_number_literal(text: &str) -> Option<(u64, Option<u32>)> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    if let Some(pos) = cleaned.find('\'') {
        let width = if pos == 0 {
            None
        } else {
            cleaned[..pos].parse::<u32>().ok()
        };
        let mut rest = &cleaned[pos + 1..];
        if rest.starts_with('s') || rest.starts_with('S') {
            rest = &rest[1..];
        }
        if rest.is_empty() {
            return None;
        }
        let (radix, digits) = match rest.as_bytes()[0].to_ascii_lowercase() {
            b'b' => (2, &rest[1..]),
            b'o' => (8, &rest[1..]),
            b'd' => (10, &rest[1..]),
            b'h' => (16, &rest[1..]),
            _ => (10, rest),
        };
        let normalized: String = digits
            .chars()
            .map(|c| match c {
                'x' | 'X' | 'z' | 'Z' | '?' => '0',
                other => other,
            })
            .collect();
        if normalized.is_empty() {
            return None;
        }
        let value = u64::from_str_radix(&normalized, radix).ok()?;
        let value = match width {
            Some(w) if w < 64 => value & ((1u64 << w) - 1),
            _ => value,
        };
        Some((value, width))
    } else if cleaned.contains('.') {
        // Real literal: truncate toward zero, no width.
        let value = cleaned.parse::<f64>().ok()?;
        Some((value as u64, None))
    } else {
        let value = cleaned.parse::<u64>().ok()?;
        Some((value, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Module {
        let mut modules = Parser::parse_source(src).expect("parse");
        assert_eq!(modules.len(), 1);
        modules.remove(0)
    }

    #[test]
    fn parses_ansi_module_with_vector_ports() {
        let m = parse_one(
            "module adder(input [3:0] a, input [3:0] b, output [4:0] sum);\n\
             assign sum = a + b;\nendmodule",
        );
        assert_eq!(m.name, "adder");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.input_names(), vec!["a", "b"]);
        assert_eq!(m.output_names(), vec!["sum"]);
        assert!(matches!(m.items[0], ModuleItem::ContinuousAssign { .. }));
    }

    #[test]
    fn parses_ansi_group_continuation() {
        let m = parse_one("module m(input a, b, c, output y); assign y = a & b & c; endmodule");
        assert_eq!(m.input_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn parses_non_ansi_ports() {
        let m = parse_one(
            "module dff(clk, d, q);\ninput clk, d;\noutput reg q;\n\
             always @(posedge clk) q <= d;\nendmodule",
        );
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.output_names(), vec!["q"]);
        assert!(m.port("q").unwrap().is_reg);
    }

    #[test]
    fn parses_parameters_in_header_and_body() {
        let m = parse_one(
            "module fifo #(parameter WIDTH = 8, parameter DEPTH = 16)(input clk);\n\
             localparam ADDR = 4;\nendmodule",
        );
        let params: Vec<&Parameter> = m
            .items
            .iter()
            .filter_map(|i| match i {
                ModuleItem::Parameter(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(params.len(), 3);
        assert!(params.iter().any(|p| p.name == "ADDR" && p.local));
    }

    #[test]
    fn parses_always_ff_with_if_else() {
        let m = parse_one(
            "module counter(input clk, input rst, output reg [7:0] q);\n\
             always @(posedge clk) begin\n  if (rst) q <= 8'd0; else q <= q + 1;\nend\nendmodule",
        );
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                ModuleItem::Always(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert!(always.sensitivity.is_edge_triggered());
        assert!(matches!(always.body, Statement::Block(_)));
    }

    #[test]
    fn parses_case_statement_with_default() {
        let m = parse_one(
            "module mux(input [1:0] sel, input [3:0] a, output reg y);\n\
             always @* begin\n case (sel)\n  2'd0: y = a[0];\n  2'd1: y = a[1];\n  \
             2'd2, 2'd3: y = a[2];\n  default: y = 1'b0;\n endcase\nend\nendmodule",
        );
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                ModuleItem::Always(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert!(always.sensitivity.star);
        if let Statement::Block(stmts) = &always.body {
            if let Statement::Case { arms, .. } = &stmts[0] {
                assert_eq!(arms.len(), 4);
                assert!(arms.last().unwrap().labels.is_empty());
                assert_eq!(arms[2].labels.len(), 2);
                return;
            }
        }
        panic!("expected case inside block");
    }

    #[test]
    fn parses_instances_named_and_positional() {
        let src = "module top(input a, output y);\nwire w;\n\
                   inv u1 (.a(a), .y(w));\n inv u2 (w, y);\n\
                   sub #(.WIDTH(8)) u3 (.x(a));\nendmodule";
        let m = parse_one(src);
        let instances = m.instances();
        assert_eq!(instances.len(), 3);
        assert_eq!(instances[0].named_connections.len(), 2);
        assert_eq!(instances[1].ordered_connections.len(), 2);
        assert_eq!(instances[2].parameter_overrides.len(), 1);
    }

    #[test]
    fn parses_concat_replication_and_slices() {
        let m = parse_one(
            "module m(input [7:0] a, output [15:0] y);\n\
             assign y = {a[7:4], {2{a[1:0]}}, 4'b0000};\nendmodule",
        );
        if let ModuleItem::ContinuousAssign { value, .. } = &m.items[0] {
            assert!(matches!(value, Expr::Concat(parts) if parts.len() == 3));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn parses_ternary_and_reduction() {
        let m = parse_one(
            "module m(input [3:0] a, input sel, output y);\n\
             assign y = sel ? &a : |a;\nendmodule",
        );
        if let ModuleItem::ContinuousAssign { value, .. } = &m.items[0] {
            assert!(matches!(value, Expr::Ternary { .. }));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        let err = Parser::parse_source("module m(input a, output y) assign y = a; endmodule")
            .unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
    }

    #[test]
    fn missing_endmodule_is_an_error() {
        let err = Parser::parse_source("module m(input a, output y); assign y = a;").unwrap_err();
        assert!(err.message.contains("unexpected end of input"), "{err}");
    }

    #[test]
    fn garbage_port_list_is_an_error() {
        assert!(Parser::parse_source("module m(input a output y); endmodule").is_err());
    }

    #[test]
    fn multiple_modules_in_one_file() {
        let modules = Parser::parse_source(
            "module a(input x, output y); assign y = x; endmodule\n\
             module b(input x, output y); assign y = ~x; endmodule",
        )
        .unwrap();
        assert_eq!(modules.len(), 2);
        assert_eq!(modules[1].name, "b");
    }

    #[test]
    fn number_literal_parsing_cases() {
        assert_eq!(parse_number_literal("42"), Some((42, None)));
        assert_eq!(parse_number_literal("4'b1010"), Some((10, Some(4))));
        assert_eq!(parse_number_literal("8'hFF"), Some((255, Some(8))));
        assert_eq!(parse_number_literal("'d7"), Some((7, None)));
        assert_eq!(parse_number_literal("16'd1_000"), Some((1000, Some(16))));
        assert_eq!(parse_number_literal("4'bxx10"), Some((2, Some(4))));
        assert_eq!(
            parse_number_literal("2'd7"),
            Some((3, Some(2))),
            "truncated to width"
        );
        assert_eq!(parse_number_literal("bogus"), None);
    }

    #[test]
    fn functions_are_skipped_without_error() {
        let m = parse_one(
            "module m(input [3:0] a, output [3:0] y);\n\
             function [3:0] twice; input [3:0] v; begin twice = v << 1; end endfunction\n\
             assign y = a;\nendmodule",
        );
        assert_eq!(m.items.len(), 1);
    }

    #[test]
    fn initial_blocks_and_system_tasks_parse() {
        let m = parse_one(
            "module tb;\nreg clk;\ninitial begin\n clk = 0;\n $display(\"hello\");\n #10 clk = 1;\nend\nendmodule",
        );
        assert!(m.items.iter().any(|i| matches!(i, ModuleItem::Initial(_))));
    }

    #[test]
    fn generate_regions_parse() {
        let m = parse_one(
            "module m(input [3:0] a, output [3:0] y);\ngenvar i;\ngenerate\n\
             assign y = a;\nendgenerate\nendmodule",
        );
        assert!(m.items.iter().any(|i| matches!(i, ModuleItem::Generate(_))));
    }

    #[test]
    fn for_loop_statement_parses() {
        let m = parse_one(
            "module m(input [7:0] a, output reg [3:0] count);\ninteger i;\n\
             always @* begin\n count = 0;\n for (i = 0; i < 8; i = i + 1) begin\n \
             count = count + a[i];\n end\nend\nendmodule",
        );
        assert!(m.items.iter().any(|i| matches!(i, ModuleItem::Always(_))));
    }
}
