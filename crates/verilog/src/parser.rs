//! Recursive-descent parser for the supported Verilog subset.
//!
//! The parser works over a borrowed token slice with an index-based
//! `peek` — tokens are `Copy`, so stepping never clones a `String` the way
//! the retired reference frontend did. Identifiers stay interned
//! [`Symbol`](crate::intern::Symbol)s all the way into the AST, and every
//! expression node is allocated into the module's [`ExprArena`] through the
//! [`ExprAlloc`] the parser is instantiated with: the default [`ExprArena`]
//! costs one `Vec` push per node, while [`BoxedExprAlloc`] reproduces the
//! retired frontend's one-`Box`-per-node cost model for benchmarking and
//! equivalence testing ([`Parser::parse_source_boxed`]). Diagnostics text
//! (parse errors, and the lint diagnostics downstream) is unchanged byte
//! for byte.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ast::*;
use crate::intern::{Interner, Symbol};
use crate::lexer::{LexError, LexedSource, Lexer};
use crate::token::{Keyword, Op, Token, TokenKind};

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            column: e.column,
        }
    }
}

/// Parses Verilog source into [`Module`] definitions.
///
/// # Example
///
/// ```
/// use verilog::Parser;
///
/// let src = "module inv(input a, output y); assign y = ~a; endmodule";
/// let modules = Parser::parse_source(src)?;
/// assert_eq!(modules[0].name, "inv");
/// assert_eq!(modules[0].ports.len(), 2);
/// # Ok::<(), verilog::ParseError>(())
/// ```
#[derive(Debug)]
pub struct Parser<'a, A: ExprAlloc = ExprArena> {
    src: &'a str,
    tokens: &'a [Token],
    interner: &'a Arc<Interner>,
    pos: usize,
    arena: A,
}

impl<'a> Parser<'a> {
    /// Creates an arena-allocating parser over a lexed source.
    pub fn new(src: &'a str, lexed: &'a LexedSource) -> Self {
        Self::with_alloc(src, lexed)
    }

    /// Lexes and parses a full source file into its modules.
    ///
    /// # Errors
    ///
    /// Returns the first lexing or parsing error encountered.
    pub fn parse_source(src: &str) -> Result<Vec<Module>, ParseError> {
        let lexed = Lexer::new(src).tokenize()?;
        Parser::new(src, &lexed).parse_modules()
    }

    /// Like [`Parser::parse_source`], but allocating every expression node
    /// through [`BoxedExprAlloc`] — one heap `Box` per node, the retired
    /// reference frontend's cost model. The resulting modules are identical
    /// to the arena parse (same ids, same arena layout); only the allocation
    /// pattern differs. This is the baseline `bench_parse` measures
    /// `speedup_vs_boxed` against, and the oracle the arena≡boxed property
    /// tests compare with.
    ///
    /// # Errors
    ///
    /// Returns the first lexing or parsing error encountered.
    pub fn parse_source_boxed(src: &str) -> Result<Vec<Module>, ParseError> {
        let lexed = Lexer::new(src).tokenize()?;
        Parser::<BoxedExprAlloc>::with_alloc(src, &lexed).parse_modules()
    }
}

impl<'a, A: ExprAlloc> Parser<'a, A> {
    /// Creates a parser over a lexed source with an explicit expression
    /// allocator.
    pub fn with_alloc(src: &'a str, lexed: &'a LexedSource) -> Self {
        Self {
            src,
            tokens: &lexed.tokens,
            interner: &lexed.interner,
            pos: 0,
            arena: A::default(),
        }
    }

    #[inline]
    fn alloc(&mut self, expr: Expr) -> ExprId {
        self.arena.alloc(expr)
    }

    #[inline]
    fn peek(&self) -> TokenKind {
        self.tokens
            .get(self.pos)
            .map(|t| t.kind)
            .unwrap_or(TokenKind::Eof)
    }

    /// Renders a token kind the way error messages expect (identical to the
    /// original frontend's `TokenKind: Display`).
    fn describe(&self, kind: TokenKind) -> String {
        match kind {
            TokenKind::Keyword(k) => format!("keyword `{k}`"),
            TokenKind::Ident(sym) => format!("identifier `{}`", self.interner.resolve(sym)),
            TokenKind::Number(span) => format!("number `{}`", span.text(self.src)),
            TokenKind::StringLit(_) => "string literal".to_string(),
            TokenKind::Op(op) => format!("`{op}`"),
            TokenKind::Eof => "end of input".to_string(),
        }
    }

    fn location(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line as usize, t.column as usize))
            .unwrap_or((0, 0))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.location();
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    #[inline]
    fn eat_op(&mut self, op: Op) -> bool {
        if matches!(self.peek(), TokenKind::Op(o) if o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: Op) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{op}`, found {}",
                self.describe(self.peek())
            )))
        }
    }

    #[inline]
    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{kw}`, found {}",
                self.describe(self.peek())
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<Symbol, ParseError> {
        match self.peek() {
            TokenKind::Ident(sym) => {
                self.pos += 1;
                Ok(sym)
            }
            other => Err(self.error(format!(
                "expected identifier, found {}",
                self.describe(other)
            ))),
        }
    }

    /// Parses every module in the token stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on the first malformed construct.
    pub fn parse_modules(&mut self) -> Result<Vec<Module>, ParseError> {
        let mut modules = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => return Ok(modules),
                TokenKind::Keyword(Keyword::Module) => modules.push(self.parse_module()?),
                other => {
                    return Err(
                        self.error(format!("expected `module`, found {}", self.describe(other)))
                    );
                }
            }
        }
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        self.expect_keyword(Keyword::Module)?;
        let name = self.expect_ident()?;
        let mut module = Module {
            name: self.interner.name(name),
            ports: Vec::new(),
            items: Vec::new(),
            arena: ExprArena::new(),
            symbols: Arc::clone(self.interner),
        };

        // Optional parameter port list: #(parameter WIDTH = 8, ...)
        if self.eat_op(Op::Hash) {
            self.expect_op(Op::LParen)?;
            loop {
                if self.eat_op(Op::RParen) {
                    break;
                }
                // `parameter` keyword is optional after the first entry.
                let _ = self.eat_keyword(Keyword::Parameter);
                // optional type-ish tokens (integer/signed/range)
                let _ = self.eat_keyword(Keyword::Integer);
                let _ = self.eat_keyword(Keyword::Signed);
                let _ = self.try_parse_range()?;
                let pname = self.expect_ident()?;
                self.expect_op(Op::Eq)?;
                let value = self.parse_expr()?;
                module.items.push(ModuleItem::Parameter(Parameter {
                    name: pname,
                    value,
                    local: false,
                }));
                if !self.eat_op(Op::Comma) {
                    self.expect_op(Op::RParen)?;
                    break;
                }
            }
        }

        // Port list (ANSI or non-ANSI), optional.
        if self.eat_op(Op::LParen) {
            self.parse_port_list(&mut module)?;
        }
        self.expect_op(Op::Semi)?;

        // Body.
        loop {
            if self.eat_keyword(Keyword::Endmodule) {
                break;
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside module body"));
            }
            let items = self.parse_module_item()?;
            module.items.extend(items);
        }

        // Promote non-ANSI port declarations to ports, preserving header order.
        promote_non_ansi_ports(&mut module);
        // The module takes ownership of its expressions; the parser starts a
        // fresh allocation for the next module in the file.
        module.arena = std::mem::take(&mut self.arena).finish();
        Ok(module)
    }

    fn parse_port_list(&mut self, module: &mut Module) -> Result<(), ParseError> {
        if self.eat_op(Op::RParen) {
            return Ok(());
        }
        // Distinguish ANSI (starts with a direction keyword) from non-ANSI
        // (bare identifiers).
        let mut current_direction: Option<PortDirection> = None;
        let mut current_range: Option<Range> = None;
        let mut current_is_reg = false;
        let mut current_signed = false;
        loop {
            match self.peek() {
                TokenKind::Keyword(kw @ (Keyword::Input | Keyword::Output | Keyword::Inout)) => {
                    self.pos += 1;
                    current_direction = Some(match kw {
                        Keyword::Input => PortDirection::Input,
                        Keyword::Output => PortDirection::Output,
                        _ => PortDirection::Inout,
                    });
                    current_is_reg = self.eat_keyword(Keyword::Reg);
                    // `output wire` is also legal; swallow a wire keyword.
                    if !current_is_reg {
                        let _ = self.eat_keyword(Keyword::Wire);
                    }
                    current_signed = self.eat_keyword(Keyword::Signed);
                    current_range = self.try_parse_range()?;
                    let name = self.expect_ident()?;
                    module.ports.push(Port {
                        name,
                        direction: current_direction.unwrap(),
                        range: current_range,
                        is_reg: current_is_reg,
                        signed: current_signed,
                    });
                }
                TokenKind::Ident(sym) => {
                    self.pos += 1;
                    if let Some(direction) = current_direction {
                        // Continuation of an ANSI group: `input a, b, c`.
                        module.ports.push(Port {
                            name: sym,
                            direction,
                            range: current_range,
                            is_reg: current_is_reg,
                            signed: current_signed,
                        });
                    } else {
                        // Non-ANSI header: record the name; the direction
                        // arrives later in the body.
                        module.ports.push(Port {
                            name: sym,
                            direction: PortDirection::Input,
                            range: None,
                            is_reg: false,
                            signed: false,
                        });
                    }
                }
                other => {
                    return Err(self.error(format!(
                        "expected port declaration, found {}",
                        self.describe(other)
                    )))
                }
            }
            if self.eat_op(Op::Comma) {
                continue;
            }
            self.expect_op(Op::RParen)?;
            return Ok(());
        }
    }

    fn try_parse_range(&mut self) -> Result<Option<Range>, ParseError> {
        if !self.eat_op(Op::LBracket) {
            return Ok(None);
        }
        let msb = self.parse_expr()?;
        self.expect_op(Op::Colon)?;
        let lsb = self.parse_expr()?;
        self.expect_op(Op::RBracket)?;
        Ok(Some(Range { msb, lsb }))
    }

    fn parse_module_item(&mut self) -> Result<Vec<ModuleItem>, ParseError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Parameter) | TokenKind::Keyword(Keyword::Localparam) => {
                let local = matches!(self.peek(), TokenKind::Keyword(Keyword::Localparam));
                self.pos += 1;
                let _ = self.eat_keyword(Keyword::Integer);
                let _ = self.eat_keyword(Keyword::Signed);
                let _ = self.try_parse_range()?;
                let mut out = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    self.expect_op(Op::Eq)?;
                    let value = self.parse_expr()?;
                    out.push(ModuleItem::Parameter(Parameter { name, value, local }));
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::Semi)?;
                Ok(out)
            }
            TokenKind::Keyword(
                kw @ (Keyword::Input
                | Keyword::Output
                | Keyword::Inout
                | Keyword::Wire
                | Keyword::Reg
                | Keyword::Integer
                | Keyword::Genvar),
            ) => {
                self.pos += 1;
                let direction = match kw {
                    Keyword::Input => Some(PortDirection::Input),
                    Keyword::Output => Some(PortDirection::Output),
                    Keyword::Inout => Some(PortDirection::Inout),
                    _ => None,
                };
                let mut kind = match kw {
                    Keyword::Reg => NetKind::Reg,
                    Keyword::Integer => NetKind::Integer,
                    Keyword::Genvar => NetKind::Genvar,
                    _ => NetKind::Wire,
                };
                if direction.is_some() {
                    if self.eat_keyword(Keyword::Reg) {
                        kind = NetKind::Reg;
                    } else if self.eat_keyword(Keyword::Wire) {
                        kind = NetKind::Wire;
                    }
                }
                let signed = self.eat_keyword(Keyword::Signed);
                let range = self.try_parse_range()?;
                let mut nets = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let array = self.try_parse_range()?;
                    let init = if self.eat_op(Op::Eq) {
                        Some(self.parse_expr()?)
                    } else {
                        None
                    };
                    nets.push(Net {
                        name,
                        kind,
                        range,
                        array,
                        signed,
                        init,
                    });
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::Semi)?;
                Ok(vec![ModuleItem::Declaration(Declaration {
                    direction,
                    nets,
                })])
            }
            TokenKind::Keyword(Keyword::Assign) => {
                self.pos += 1;
                let mut out = Vec::new();
                loop {
                    let target = self.parse_expr()?;
                    self.expect_op(Op::Eq)?;
                    let value = self.parse_expr()?;
                    out.push(ModuleItem::ContinuousAssign { target, value });
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::Semi)?;
                Ok(out)
            }
            TokenKind::Keyword(Keyword::Always) => {
                self.pos += 1;
                let sensitivity = self.parse_sensitivity()?;
                let body = self.parse_statement()?;
                Ok(vec![ModuleItem::Always(AlwaysBlock { sensitivity, body })])
            }
            TokenKind::Keyword(Keyword::Initial) => {
                self.pos += 1;
                let body = self.parse_statement()?;
                Ok(vec![ModuleItem::Initial(body)])
            }
            TokenKind::Keyword(Keyword::Generate) => {
                self.pos += 1;
                let mut inner = Vec::new();
                while !self.eat_keyword(Keyword::Endgenerate) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside generate region"));
                    }
                    inner.extend(self.parse_module_item()?);
                }
                Ok(vec![ModuleItem::Generate(inner)])
            }
            TokenKind::Keyword(Keyword::Function) | TokenKind::Keyword(Keyword::Task) => {
                // Functions/tasks are tolerated but skipped: consume tokens
                // until the matching end keyword.
                let is_function = matches!(self.peek(), TokenKind::Keyword(Keyword::Function));
                self.pos += 1;
                let end_kw = if is_function {
                    Keyword::Endfunction
                } else {
                    Keyword::Endtask
                };
                while !self.eat_keyword(end_kw) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside function/task"));
                    }
                    self.pos += 1;
                }
                Ok(vec![])
            }
            TokenKind::Ident(_) => {
                // Module instantiation: `name [#(...)] inst_name ( ... );`
                let inst = self.parse_instance()?;
                Ok(vec![ModuleItem::Instance(inst)])
            }
            other => Err(self.error(format!(
                "unexpected {} in module body",
                self.describe(other)
            ))),
        }
    }

    fn parse_instance(&mut self) -> Result<Instance, ParseError> {
        let module = self.expect_ident()?;
        let mut parameter_overrides = Vec::new();
        if self.eat_op(Op::Hash) {
            self.expect_op(Op::LParen)?;
            if !self.eat_op(Op::RParen) {
                loop {
                    if self.eat_op(Op::Dot) {
                        let pname = self.expect_ident()?;
                        self.expect_op(Op::LParen)?;
                        let value = self.parse_expr()?;
                        self.expect_op(Op::RParen)?;
                        parameter_overrides.push((Some(pname), value));
                    } else {
                        let value = self.parse_expr()?;
                        parameter_overrides.push((None, value));
                    }
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RParen)?;
            }
        }
        let name = self.expect_ident()?;
        self.expect_op(Op::LParen)?;
        let mut named_connections = Vec::new();
        let mut ordered_connections = Vec::new();
        if !self.eat_op(Op::RParen) {
            loop {
                if self.eat_op(Op::Dot) {
                    let port = self.expect_ident()?;
                    self.expect_op(Op::LParen)?;
                    if self.eat_op(Op::RParen) {
                        named_connections.push((port, None));
                    } else {
                        let value = self.parse_expr()?;
                        self.expect_op(Op::RParen)?;
                        named_connections.push((port, Some(value)));
                    }
                } else {
                    ordered_connections.push(self.parse_expr()?);
                }
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
            self.expect_op(Op::RParen)?;
        }
        self.expect_op(Op::Semi)?;
        Ok(Instance {
            module,
            name,
            named_connections,
            ordered_connections,
            parameter_overrides,
        })
    }

    fn parse_sensitivity(&mut self) -> Result<SensitivityList, ParseError> {
        let mut list = SensitivityList::default();
        if !self.eat_op(Op::At) {
            // `always` with no event control (e.g. `always begin ... end`) is
            // treated as combinational.
            list.star = true;
            return Ok(list);
        }
        if self.eat_op(Op::Star) {
            list.star = true;
            return Ok(list);
        }
        self.expect_op(Op::LParen)?;
        if self.eat_op(Op::Star) {
            list.star = true;
            self.expect_op(Op::RParen)?;
            return Ok(list);
        }
        loop {
            let edge = if self.eat_keyword(Keyword::Posedge) {
                EdgeKind::Posedge
            } else if self.eat_keyword(Keyword::Negedge) {
                EdgeKind::Negedge
            } else {
                EdgeKind::Level
            };
            let name = self.expect_ident()?;
            list.entries.push((edge, name));
            if self.eat_op(Op::Comma) || self.eat_keyword(Keyword::Or) {
                continue;
            }
            self.expect_op(Op::RParen)?;
            return Ok(list);
        }
    }

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Begin) => {
                self.pos += 1;
                // Optional block label `begin : name`.
                if self.eat_op(Op::Colon) {
                    let _ = self.expect_ident()?;
                }
                let mut body = Vec::new();
                while !self.eat_keyword(Keyword::End) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside begin/end block"));
                    }
                    body.push(self.parse_statement()?);
                }
                Ok(Statement::Block(body))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.pos += 1;
                self.expect_op(Op::LParen)?;
                let condition = self.parse_expr()?;
                self.expect_op(Op::RParen)?;
                let then_branch = Box::new(self.parse_statement()?);
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_statement()?))
                } else {
                    None
                };
                Ok(Statement::If {
                    condition,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                self.pos += 1;
                let kind = match kw {
                    Keyword::Casez => CaseKind::Casez,
                    Keyword::Casex => CaseKind::Casex,
                    _ => CaseKind::Case,
                };
                self.expect_op(Op::LParen)?;
                let subject = self.parse_expr()?;
                self.expect_op(Op::RParen)?;
                let mut arms = Vec::new();
                while !self.eat_keyword(Keyword::Endcase) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.error("unexpected end of input inside case statement"));
                    }
                    if self.eat_keyword(Keyword::Default) {
                        let _ = self.eat_op(Op::Colon);
                        let body = self.parse_statement()?;
                        arms.push(CaseArm {
                            labels: vec![],
                            body,
                        });
                        continue;
                    }
                    let mut labels = vec![self.parse_expr()?];
                    while self.eat_op(Op::Comma) {
                        labels.push(self.parse_expr()?);
                    }
                    self.expect_op(Op::Colon)?;
                    let body = self.parse_statement()?;
                    arms.push(CaseArm { labels, body });
                }
                Ok(Statement::Case {
                    kind,
                    subject,
                    arms,
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.pos += 1;
                self.expect_op(Op::LParen)?;
                let init = Box::new(self.parse_assignment_no_semi()?);
                self.expect_op(Op::Semi)?;
                let condition = self.parse_expr()?;
                self.expect_op(Op::Semi)?;
                let step = Box::new(self.parse_assignment_no_semi()?);
                self.expect_op(Op::RParen)?;
                let body = Box::new(self.parse_statement()?);
                Ok(Statement::For {
                    init,
                    condition,
                    step,
                    body,
                })
            }
            TokenKind::Op(Op::Semi) => {
                self.pos += 1;
                Ok(Statement::Empty)
            }
            TokenKind::Op(Op::Hash) => {
                // Delay control `#10 statement` — skip the delay and parse the
                // controlled statement (testbench style code).
                self.pos += 1;
                let _ = self.parse_primary()?;
                self.parse_statement()
            }
            TokenKind::Op(Op::At) => {
                // Event control inside a statement, e.g. `@(posedge clk) q = d;`
                let _ = self.parse_sensitivity()?;
                self.parse_statement()
            }
            TokenKind::Ident(sym) if self.interner.resolve(sym).starts_with('$') => {
                self.pos += 1;
                let mut args = Vec::new();
                if self.eat_op(Op::LParen) && !self.eat_op(Op::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat_op(Op::Comma) {
                            break;
                        }
                    }
                    self.expect_op(Op::RParen)?;
                }
                self.expect_op(Op::Semi)?;
                Ok(Statement::SystemCall { name: sym, args })
            }
            _ => {
                let stmt = self.parse_assignment_no_semi()?;
                self.expect_op(Op::Semi)?;
                Ok(stmt)
            }
        }
    }

    fn parse_assignment_no_semi(&mut self) -> Result<Statement, ParseError> {
        let target = self.parse_expr_no_comparison_shortcut()?;
        if self.eat_op(Op::Le) {
            let value = self.parse_expr()?;
            Ok(Statement::NonBlocking { target, value })
        } else if self.eat_op(Op::Eq) {
            let value = self.parse_expr()?;
            Ok(Statement::Blocking { target, value })
        } else {
            Err(self.error(format!(
                "expected `=` or `<=`, found {}",
                self.describe(self.peek())
            )))
        }
    }

    /// Parses an assignment *target* expression: stops before `<=`/`=` so the
    /// statement parser can decide blocking vs non-blocking. Targets are
    /// primaries with optional selects or concatenations, so full precedence
    /// parsing is unnecessary (and would swallow `<=`).
    fn parse_expr_no_comparison_shortcut(&mut self) -> Result<ExprId, ParseError> {
        self.parse_postfix()
    }

    // ----- expression parsing (precedence climbing) -----

    /// Parses a full expression into the parser's allocator, returning its id.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the token stream is not an expression.
    pub fn parse_expr(&mut self) -> Result<ExprId, ParseError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<ExprId, ParseError> {
        let condition = self.parse_binary(0)?;
        if self.eat_op(Op::Question) {
            let then_expr = self.parse_ternary()?;
            self.expect_op(Op::Colon)?;
            let else_expr = self.parse_ternary()?;
            Ok(self.alloc(Expr::Ternary {
                condition,
                then_expr,
                else_expr,
            }))
        } else {
            Ok(condition)
        }
    }

    /// Binary operator table for precedence climbing: the AST operator and
    /// its binding power (higher binds tighter). One lookup replaces the
    /// eleven-deep recursive ladder of the original frontend, so a primary
    /// costs one peek instead of a call frame per precedence level.
    fn binary_op(op: Op) -> Option<(BinaryOp, u8)> {
        Some(match op {
            Op::OrOr => (BinaryOp::LogicalOr, 1),
            Op::AndAnd => (BinaryOp::LogicalAnd, 2),
            Op::Pipe => (BinaryOp::Or, 3),
            Op::Caret => (BinaryOp::Xor, 4),
            Op::TildeCaret | Op::CaretTilde => (BinaryOp::Xnor, 4),
            Op::Amp => (BinaryOp::And, 5),
            Op::EqEq => (BinaryOp::Eq, 6),
            Op::Neq => (BinaryOp::Neq, 6),
            Op::CaseEq => (BinaryOp::CaseEq, 6),
            Op::CaseNeq => (BinaryOp::CaseNeq, 6),
            Op::Le => (BinaryOp::Le, 7),
            Op::Ge => (BinaryOp::Ge, 7),
            Op::Lt => (BinaryOp::Lt, 7),
            Op::Gt => (BinaryOp::Gt, 7),
            Op::AShl => (BinaryOp::AShl, 8),
            Op::AShr => (BinaryOp::AShr, 8),
            Op::Shl => (BinaryOp::Shl, 8),
            Op::Shr => (BinaryOp::Shr, 8),
            Op::Plus => (BinaryOp::Add, 9),
            Op::Minus => (BinaryOp::Sub, 9),
            Op::Star => (BinaryOp::Mul, 10),
            Op::Slash => (BinaryOp::Div, 10),
            Op::Percent => (BinaryOp::Mod, 10),
            Op::Pow => (BinaryOp::Pow, 11),
            _ => return None,
        })
    }

    /// Precedence-climbing loop over [`Self::binary_op`]. `**` is
    /// right-associative (its right operand re-admits precedence 11);
    /// everything else is left-associative, exactly like the ladder it
    /// replaces — the differential fixtures pin the grouping.
    fn parse_binary(&mut self, min_prec: u8) -> Result<ExprId, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let TokenKind::Op(op) = self.peek() else {
                return Ok(lhs);
            };
            let Some((bin, prec)) = Self::binary_op(op) else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.pos += 1;
            let next_min = if matches!(bin, BinaryOp::Pow) {
                prec
            } else {
                prec + 1
            };
            let rhs = self.parse_binary(next_min)?;
            lhs = self.alloc(Expr::Binary { op: bin, lhs, rhs });
        }
    }

    fn parse_unary(&mut self) -> Result<ExprId, ParseError> {
        let op = if self.eat_op(Op::Bang) {
            Some(UnaryOp::Not)
        } else if self.eat_op(Op::TildeAmp) {
            Some(UnaryOp::ReduceNand)
        } else if self.eat_op(Op::TildePipe) {
            Some(UnaryOp::ReduceNor)
        } else if self.eat_op(Op::TildeCaret) || self.eat_op(Op::CaretTilde) {
            Some(UnaryOp::ReduceXnor)
        } else if self.eat_op(Op::Tilde) {
            Some(UnaryOp::BitNot)
        } else if self.eat_op(Op::Minus) {
            Some(UnaryOp::Negate)
        } else if self.eat_op(Op::Plus) {
            Some(UnaryOp::Plus)
        } else if self.eat_op(Op::Amp) {
            Some(UnaryOp::ReduceAnd)
        } else if self.eat_op(Op::Pipe) {
            Some(UnaryOp::ReduceOr)
        } else if self.eat_op(Op::Caret) {
            Some(UnaryOp::ReduceXor)
        } else {
            None
        };
        match op {
            Some(op) => {
                let operand = self.parse_unary()?;
                Ok(self.alloc(Expr::Unary { op, operand }))
            }
            None => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<ExprId, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.eat_op(Op::LBracket) {
                let first = self.parse_expr()?;
                if self.eat_op(Op::Colon) {
                    let lsb = self.parse_expr()?;
                    self.expect_op(Op::RBracket)?;
                    expr = self.alloc(Expr::Slice {
                        base: expr,
                        msb: first,
                        lsb,
                    });
                } else if self.eat_op(Op::PlusColon) || self.eat_op(Op::MinusColon) {
                    // Indexed part selects are approximated as a slice with
                    // the same base/width information.
                    let width = self.parse_expr()?;
                    self.expect_op(Op::RBracket)?;
                    expr = self.alloc(Expr::Slice {
                        base: expr,
                        msb: first,
                        lsb: width,
                    });
                } else {
                    self.expect_op(Op::RBracket)?;
                    expr = self.alloc(Expr::Index {
                        base: expr,
                        index: first,
                    });
                }
            } else {
                return Ok(expr);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<ExprId, ParseError> {
        match self.peek() {
            TokenKind::Number(span) => {
                self.pos += 1;
                let text = span.text(self.src);
                if let Some((value, x_mask, z_mask, width)) = parse_pattern_literal(text) {
                    return Ok(self.alloc(Expr::Pattern {
                        value,
                        x_mask,
                        z_mask,
                        width,
                    }));
                }
                let (value, width) = parse_number_literal(text)
                    .ok_or_else(|| self.error(format!("invalid number literal `{text}`")))?;
                Ok(self.alloc(Expr::Number { value, width }))
            }
            TokenKind::StringLit(span) => {
                self.pos += 1;
                let value = Lexer::string_value(self.src, span);
                Ok(self.alloc(Expr::StringLit(value)))
            }
            TokenKind::Ident(sym) => {
                self.pos += 1;
                if self.eat_op(Op::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_op(Op::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_op(Op::Comma) {
                                break;
                            }
                        }
                        self.expect_op(Op::RParen)?;
                    }
                    Ok(self.alloc(Expr::Call { name: sym, args }))
                } else {
                    Ok(self.alloc(Expr::Ident(sym)))
                }
            }
            TokenKind::Op(Op::LParen) => {
                self.pos += 1;
                let expr = self.parse_expr()?;
                self.expect_op(Op::RParen)?;
                Ok(expr)
            }
            TokenKind::Op(Op::LBrace) => {
                self.pos += 1;
                let first = self.parse_expr()?;
                if self.eat_op(Op::LBrace) {
                    // Replication {N{expr}}
                    let value = self.parse_expr()?;
                    self.expect_op(Op::RBrace)?;
                    self.expect_op(Op::RBrace)?;
                    return Ok(self.alloc(Expr::Repeat {
                        count: first,
                        value,
                    }));
                }
                let mut parts = vec![first];
                while self.eat_op(Op::Comma) {
                    parts.push(self.parse_expr()?);
                }
                self.expect_op(Op::RBrace)?;
                Ok(self.alloc(Expr::Concat(parts)))
            }
            other => Err(self.error(format!(
                "expected expression, found {}",
                self.describe(other)
            ))),
        }
    }
}

/// Converts non-ANSI style modules (bare names in the header, directions
/// declared in the body) into fully-populated port lists.
pub(crate) fn promote_non_ansi_ports(module: &mut Module) {
    use std::collections::HashMap;
    let mut decls: HashMap<Symbol, (PortDirection, Option<Range>, bool, bool)> = HashMap::new();
    for item in &module.items {
        if let ModuleItem::Declaration(decl) = item {
            if let Some(direction) = decl.direction {
                for net in &decl.nets {
                    decls.insert(
                        net.name,
                        (direction, net.range, net.kind == NetKind::Reg, net.signed),
                    );
                }
            }
        }
    }
    for port in &mut module.ports {
        if let Some((direction, range, is_reg, signed)) = decls.get(&port.name) {
            port.direction = *direction;
            if port.range.is_none() {
                port.range = *range;
            }
            port.is_reg |= *is_reg;
            port.signed |= *signed;
        }
    }
}

/// Parses a Verilog number literal spelling into `(value, declared_width)`.
///
/// `x`, `z` and `?` digits are mapped to zero (two-state semantics).
pub fn parse_number_literal(text: &str) -> Option<(u64, Option<u32>)> {
    let bytes = text.as_bytes();
    if let Some(pos) = bytes.iter().position(|&b| b == b'\'') {
        // Sized/based literal. Width digits before the quote, underscores
        // skipped; overflow or a stray byte leaves the width unspecified,
        // like the `str::parse` it replaces.
        let width = if pos == 0 {
            None
        } else {
            let mut width: u32 = 0;
            let mut any = false;
            bytes[..pos]
                .iter()
                .filter(|&&b| b != b'_')
                .try_for_each(|&b| {
                    if !b.is_ascii_digit() {
                        return None;
                    }
                    any = true;
                    width = width.checked_mul(10)?.checked_add(u32::from(b - b'0'))?;
                    Some(())
                })
                .filter(|()| any)
                .map(|()| width)
        };
        let mut i = pos + 1;
        if matches!(bytes.get(i), Some(b's' | b'S')) {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        let radix: u32 = match bytes[i].to_ascii_lowercase() {
            b'b' => {
                i += 1;
                2
            }
            b'o' => {
                i += 1;
                8
            }
            b'd' => {
                i += 1;
                10
            }
            b'h' => {
                i += 1;
                16
            }
            _ => 10,
        };
        let mut value: u64 = 0;
        let mut any = false;
        for &b in &bytes[i..] {
            if b == b'_' {
                continue;
            }
            let digit = match b {
                b'x' | b'X' | b'z' | b'Z' | b'?' => 0,
                _ => u64::from((b as char).to_digit(radix)?),
            };
            any = true;
            value = value.checked_mul(u64::from(radix))?.checked_add(digit)?;
        }
        if !any {
            return None;
        }
        let value = match width {
            Some(w) if w < 64 => value & ((1u64 << w) - 1),
            _ => value,
        };
        Some((value, width))
    } else if bytes.contains(&b'.') {
        // Real literal: truncate toward zero, no width.
        let value = if bytes.contains(&b'_') {
            let cleaned: String = text.chars().filter(|c| *c != '_').collect();
            cleaned.parse::<f64>().ok()?
        } else {
            text.parse::<f64>().ok()?
        };
        Some((value as u64, None))
    } else {
        // Plain decimal.
        let mut value: u64 = 0;
        let mut any = false;
        for &b in bytes {
            if b == b'_' {
                continue;
            }
            if !b.is_ascii_digit() {
                return None;
            }
            any = true;
            value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
        }
        if !any {
            return None;
        }
        Some((value, None))
    }
}

/// Parses a based literal containing `x`/`z`/`?` digits into
/// `(value, x_mask, z_mask, declared_width)`.
///
/// Returns `None` for literals without wildcard digits (the common case,
/// handled by [`parse_number_literal`]) and for spellings whose wildcard
/// positions cannot be mapped to bits — a malformed literal falls back to
/// the plain number path, which keeps error reporting unchanged.
///
/// The `value` and `width` agree exactly with [`parse_number_literal`] on
/// the same spelling (wildcard digits contribute zero bits), so every
/// consumer that only looks at the folded value behaves as before.
pub fn parse_pattern_literal(text: &str) -> Option<(u64, u64, u64, Option<u32>)> {
    let bytes = text.as_bytes();
    let quote = bytes.iter().position(|&b| b == b'\'')?;
    if !bytes[quote..]
        .iter()
        .any(|&b| matches!(b, b'x' | b'X' | b'z' | b'Z' | b'?'))
    {
        return None;
    }
    let width = if quote == 0 {
        None
    } else {
        let mut width: u32 = 0;
        let mut any = false;
        for &b in bytes[..quote].iter().filter(|&&b| b != b'_') {
            if !b.is_ascii_digit() {
                return None;
            }
            any = true;
            width = width.checked_mul(10)?.checked_add(u32::from(b - b'0'))?;
        }
        any.then_some(width)
    };
    let mut i = quote + 1;
    if matches!(bytes.get(i), Some(b's' | b'S')) {
        i += 1;
    }
    // Only power-of-two radices map digits onto bit positions.
    let (radix, bits_per_digit) = match bytes.get(i)?.to_ascii_lowercase() {
        b'b' => (2u32, 1u32),
        b'o' => (8, 3),
        b'h' => (16, 4),
        _ => return None,
    };
    i += 1;
    let digit_mask = (1u64 << bits_per_digit) - 1;
    let (mut value, mut x_mask, mut z_mask) = (0u64, 0u64, 0u64);
    let mut any = false;
    for &b in &bytes[i..] {
        if b == b'_' {
            continue;
        }
        let (digit, xm, zm) = match b {
            b'x' | b'X' => (0, digit_mask, 0),
            b'z' | b'Z' | b'?' => (0, 0, digit_mask),
            _ => (u64::from((b as char).to_digit(radix)?), 0, 0),
        };
        any = true;
        // Overflow out of 64 bits mirrors `parse_number_literal`'s
        // checked arithmetic: the literal falls back to the number path.
        if (value | x_mask | z_mask) >> (64 - bits_per_digit) != 0 {
            return None;
        }
        value = (value << bits_per_digit) | digit;
        x_mask = (x_mask << bits_per_digit) | xm;
        z_mask = (z_mask << bits_per_digit) | zm;
    }
    if !any {
        return None;
    }
    if let Some(w) = width {
        if w < 64 {
            let m = (1u64 << w) - 1;
            value &= m;
            x_mask &= m;
            z_mask &= m;
        }
    }
    Some((value, x_mask, z_mask, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Module {
        let mut modules = Parser::parse_source(src).expect("parse");
        assert_eq!(modules.len(), 1);
        modules.remove(0)
    }

    #[test]
    fn parses_ansi_module_with_vector_ports() {
        let m = parse_one(
            "module adder(input [3:0] a, input [3:0] b, output [4:0] sum);\n\
             assign sum = a + b;\nendmodule",
        );
        assert_eq!(m.name, "adder");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.input_names(), vec!["a", "b"]);
        assert_eq!(m.output_names(), vec!["sum"]);
        assert!(matches!(m.items[0], ModuleItem::ContinuousAssign { .. }));
    }

    #[test]
    fn parses_ansi_group_continuation() {
        let m = parse_one("module m(input a, b, c, output y); assign y = a & b & c; endmodule");
        assert_eq!(m.input_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn parses_non_ansi_ports() {
        let m = parse_one(
            "module dff(clk, d, q);\ninput clk, d;\noutput reg q;\n\
             always @(posedge clk) q <= d;\nendmodule",
        );
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.output_names(), vec!["q"]);
        assert!(m.port("q").unwrap().is_reg);
    }

    #[test]
    fn parses_parameters_in_header_and_body() {
        let m = parse_one(
            "module fifo #(parameter WIDTH = 8, parameter DEPTH = 16)(input clk);\n\
             localparam ADDR = 4;\nendmodule",
        );
        let params: Vec<&Parameter> = m
            .items
            .iter()
            .filter_map(|i| match i {
                ModuleItem::Parameter(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(params.len(), 3);
        assert!(params
            .iter()
            .any(|p| m.resolve(p.name) == "ADDR" && p.local));
    }

    #[test]
    fn parses_always_ff_with_if_else() {
        let m = parse_one(
            "module counter(input clk, input rst, output reg [7:0] q);\n\
             always @(posedge clk) begin\n  if (rst) q <= 8'd0; else q <= q + 1;\nend\nendmodule",
        );
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                ModuleItem::Always(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert!(always.sensitivity.is_edge_triggered());
        assert!(matches!(always.body, Statement::Block(_)));
    }

    #[test]
    fn parses_case_statement_with_default() {
        let m = parse_one(
            "module mux(input [1:0] sel, input [3:0] a, output reg y);\n\
             always @* begin\n case (sel)\n  2'd0: y = a[0];\n  2'd1: y = a[1];\n  \
             2'd2, 2'd3: y = a[2];\n  default: y = 1'b0;\n endcase\nend\nendmodule",
        );
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                ModuleItem::Always(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert!(always.sensitivity.star);
        if let Statement::Block(stmts) = &always.body {
            if let Statement::Case { arms, .. } = &stmts[0] {
                assert_eq!(arms.len(), 4);
                assert!(arms.last().unwrap().labels.is_empty());
                assert_eq!(arms[2].labels.len(), 2);
                return;
            }
        }
        panic!("expected case inside block");
    }

    #[test]
    fn parses_instances_named_and_positional() {
        let src = "module top(input a, output y);\nwire w;\n\
                   inv u1 (.a(a), .y(w));\n inv u2 (w, y);\n\
                   sub #(.WIDTH(8)) u3 (.x(a));\nendmodule";
        let m = parse_one(src);
        let instances = m.instances();
        assert_eq!(instances.len(), 3);
        assert_eq!(instances[0].named_connections.len(), 2);
        assert_eq!(instances[1].ordered_connections.len(), 2);
        assert_eq!(instances[2].parameter_overrides.len(), 1);
        assert!(instances[2].parameter_overrides[0].0.is_some());
    }

    #[test]
    fn parses_concat_replication_and_slices() {
        let m = parse_one(
            "module m(input [7:0] a, output [15:0] y);\n\
             assign y = {a[7:4], {2{a[1:0]}}, 4'b0000};\nendmodule",
        );
        if let ModuleItem::ContinuousAssign { value, .. } = &m.items[0] {
            assert!(matches!(&m.arena[*value], Expr::Concat(parts) if parts.len() == 3));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn parses_ternary_and_reduction() {
        let m = parse_one(
            "module m(input [3:0] a, input sel, output y);\n\
             assign y = sel ? &a : |a;\nendmodule",
        );
        if let ModuleItem::ContinuousAssign { value, .. } = &m.items[0] {
            assert!(matches!(&m.arena[*value], Expr::Ternary { .. }));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        let err = Parser::parse_source("module m(input a, output y) assign y = a; endmodule")
            .unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
    }

    #[test]
    fn missing_endmodule_is_an_error() {
        let err = Parser::parse_source("module m(input a, output y); assign y = a;").unwrap_err();
        assert!(err.message.contains("unexpected end of input"), "{err}");
    }

    #[test]
    fn garbage_port_list_is_an_error() {
        assert!(Parser::parse_source("module m(input a output y); endmodule").is_err());
    }

    #[test]
    fn multiple_modules_in_one_file() {
        let modules = Parser::parse_source(
            "module a(input x, output y); assign y = x; endmodule\n\
             module b(input x, output y); assign y = ~x; endmodule",
        )
        .unwrap();
        assert_eq!(modules.len(), 2);
        assert_eq!(modules[1].name, "b");
    }

    #[test]
    fn each_module_owns_a_compact_arena() {
        let modules = Parser::parse_source(
            "module a(input x, output y); assign y = x & 1; endmodule\n\
             module b(input x, output y); assign y = x; endmodule",
        )
        .unwrap();
        // Arenas are per-module: the second module's arena holds only its own
        // expressions, not module `a`'s.
        assert!(modules[0].arena.len() > modules[1].arena.len());
    }

    #[test]
    fn boxed_alloc_parses_to_identical_modules() {
        let src =
            "module m #(parameter W = 4)(input [W-1:0] a, input sel, output reg [W-1:0] y);\n\
                   wire t = a[0] ^ a[1];\n\
                   always @* begin\n if (sel) y = {W{t}}; else y = a + 4'd1;\nend\nendmodule";
        let arena = Parser::parse_source(src).unwrap();
        let boxed = Parser::parse_source_boxed(src).unwrap();
        assert_eq!(arena, boxed);
    }

    #[test]
    fn number_literal_parsing_cases() {
        assert_eq!(parse_number_literal("42"), Some((42, None)));
        assert_eq!(parse_number_literal("4'b1010"), Some((10, Some(4))));
        assert_eq!(parse_number_literal("8'hFF"), Some((255, Some(8))));
        assert_eq!(parse_number_literal("'d7"), Some((7, None)));
        assert_eq!(parse_number_literal("16'd1_000"), Some((1000, Some(16))));
        assert_eq!(parse_number_literal("4'bxx10"), Some((2, Some(4))));
        assert_eq!(
            parse_number_literal("2'd7"),
            Some((3, Some(2))),
            "truncated to width"
        );
        assert_eq!(parse_number_literal("bogus"), None);
    }

    #[test]
    fn functions_are_skipped_without_error() {
        let m = parse_one(
            "module m(input [3:0] a, output [3:0] y);\n\
             function [3:0] twice; input [3:0] v; begin twice = v << 1; end endfunction\n\
             assign y = a;\nendmodule",
        );
        assert_eq!(m.items.len(), 1);
    }

    #[test]
    fn initial_blocks_and_system_tasks_parse() {
        let m = parse_one(
            "module tb;\nreg clk;\ninitial begin\n clk = 0;\n $display(\"hello\");\n #10 clk = 1;\nend\nendmodule",
        );
        assert!(m.items.iter().any(|i| matches!(i, ModuleItem::Initial(_))));
    }

    #[test]
    fn generate_regions_parse() {
        let m = parse_one(
            "module m(input [3:0] a, output [3:0] y);\ngenvar i;\ngenerate\n\
             assign y = a;\nendgenerate\nendmodule",
        );
        assert!(m.items.iter().any(|i| matches!(i, ModuleItem::Generate(_))));
    }

    #[test]
    fn for_loop_statement_parses() {
        let m = parse_one(
            "module m(input [7:0] a, output reg [3:0] count);\ninteger i;\n\
             always @* begin\n count = 0;\n for (i = 0; i < 8; i = i + 1) begin\n \
             count = count + a[i];\n end\nend\nendmodule",
        );
        assert!(m.items.iter().any(|i| matches!(i, ModuleItem::Always(_))));
    }

    #[test]
    fn error_messages_render_token_text() {
        let err = Parser::parse_source("module 42").unwrap_err();
        assert!(err.message.contains("number `42`"), "{err}");
        let err = Parser::parse_source("module m; foo bar").unwrap_err();
        assert!(err.message.contains('`'), "{err}");
    }
}
