//! Arena-backed abstract syntax tree for the supported Verilog subset.
//!
//! The subset is the synthesisable core that the paper's datasets and
//! benchmark problems are written in: module declarations with ANSI or
//! non-ANSI port lists, parameter/localparam declarations, `wire`/`reg`
//! declarations (with packed ranges and simple memories), continuous
//! assignments, `always` blocks (combinational and edge-triggered),
//! `initial` blocks, module instantiations and the usual expression
//! operators.
//!
//! Expressions live in one [`ExprArena`] per [`Module`]: every [`Expr`]
//! child position holds a `Copy` [`ExprId`] index instead of a `Box<Expr>`,
//! so a parse performs one arena `Vec` growth per module instead of one
//! heap allocation per expression node, and walking an expression tree is
//! an index chase through a contiguous buffer. Identifiers inside the AST
//! are the lexer's interned [`Symbol`]s; the module carries its
//! [`Interner`] so names can always be resolved back to text.

use std::ops::Index;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::intern::{Interner, Name, Symbol};

/// A `Copy` handle to an expression stored in an [`ExprArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw index of the expression in its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Serialize for ExprId {
    fn to_value(&self) -> serde::Value {
        serde::Value::UInt(u64::from(self.0))
    }
}

impl serde::Deserialize for ExprId {}

/// The expression store of one module: a flat `Vec` the parser appends to
/// in post-order, indexed by [`ExprId`]. Children always precede parents,
/// so iterating the arena visits every subexpression before its use.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExprArena {
    nodes: Vec<Expr>,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores an expression, returning its id.
    pub fn alloc(&mut self, expr: Expr) -> ExprId {
        let id = u32::try_from(self.nodes.len()).expect("more than u32::MAX expressions");
        self.nodes.push(expr);
        ExprId(id)
    }

    /// The expression behind `id`, or `None` if the id belongs to a
    /// different arena and is out of range.
    pub fn get(&self, id: ExprId) -> Option<&Expr> {
        self.nodes.get(id.index())
    }

    /// Number of expressions stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no expressions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Collects the symbols of all identifiers referenced by `id`, in
    /// depth-first source order.
    pub fn referenced_idents(&self, id: ExprId) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_idents(id, &mut out);
        out
    }

    /// Appends the symbols of all identifiers referenced by `id` to `out`.
    pub fn collect_idents(&self, id: ExprId, out: &mut Vec<Symbol>) {
        match &self[id] {
            Expr::Ident(sym) => out.push(*sym),
            Expr::Number { .. } | Expr::Pattern { .. } | Expr::StringLit(_) => {}
            Expr::Unary { operand, .. } => self.collect_idents(*operand, out),
            Expr::Binary { lhs, rhs, .. } => {
                self.collect_idents(*lhs, out);
                self.collect_idents(*rhs, out);
            }
            Expr::Ternary {
                condition,
                then_expr,
                else_expr,
            } => {
                self.collect_idents(*condition, out);
                self.collect_idents(*then_expr, out);
                self.collect_idents(*else_expr, out);
            }
            Expr::Index { base, index } => {
                self.collect_idents(*base, out);
                self.collect_idents(*index, out);
            }
            Expr::Slice { base, msb, lsb } => {
                self.collect_idents(*base, out);
                self.collect_idents(*msb, out);
                self.collect_idents(*lsb, out);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    self.collect_idents(*p, out);
                }
            }
            Expr::Repeat { count, value } => {
                self.collect_idents(*count, out);
                self.collect_idents(*value, out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.collect_idents(*a, out);
                }
            }
        }
    }

    /// A [`std::fmt::Debug`] view of the expression behind `id` that renders
    /// the *tree* (identifiers resolved through `symbols`), byte-identical
    /// to the `Debug` output of the pre-arena boxed AST. Used by the
    /// interpreter's error messages, which are pinned by snapshot fixtures.
    pub fn expr_debug<'a>(&'a self, symbols: &'a Interner, id: ExprId) -> ExprDebug<'a> {
        ExprDebug {
            arena: self,
            symbols,
            id,
        }
    }
}

impl Index<ExprId> for ExprArena {
    type Output = Expr;

    fn index(&self, id: ExprId) -> &Expr {
        &self.nodes[id.index()]
    }
}

/// See [`ExprArena::expr_debug`].
#[derive(Clone, Copy)]
pub struct ExprDebug<'a> {
    arena: &'a ExprArena,
    symbols: &'a Interner,
    id: ExprId,
}

impl<'a> ExprDebug<'a> {
    fn at(&self, id: ExprId) -> Self {
        Self { id, ..*self }
    }

    fn list(&self, ids: &'a [ExprId]) -> ExprListDebug<'a> {
        ExprListDebug {
            arena: self.arena,
            symbols: self.symbols,
            ids,
        }
    }
}

impl std::fmt::Debug for ExprDebug<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.arena[self.id] {
            Expr::Number { value, width } => f
                .debug_struct("Number")
                .field("value", value)
                .field("width", width)
                .finish(),
            Expr::Pattern {
                value,
                x_mask,
                z_mask,
                width,
            } => f
                .debug_struct("Pattern")
                .field("value", value)
                .field("x_mask", x_mask)
                .field("z_mask", z_mask)
                .field("width", width)
                .finish(),
            Expr::Ident(sym) => f
                .debug_tuple("Ident")
                .field(&self.symbols.resolve(*sym))
                .finish(),
            Expr::Unary { op, operand } => f
                .debug_struct("Unary")
                .field("op", op)
                .field("operand", &self.at(*operand))
                .finish(),
            Expr::Binary { op, lhs, rhs } => f
                .debug_struct("Binary")
                .field("op", op)
                .field("lhs", &self.at(*lhs))
                .field("rhs", &self.at(*rhs))
                .finish(),
            Expr::Ternary {
                condition,
                then_expr,
                else_expr,
            } => f
                .debug_struct("Ternary")
                .field("condition", &self.at(*condition))
                .field("then_expr", &self.at(*then_expr))
                .field("else_expr", &self.at(*else_expr))
                .finish(),
            Expr::Index { base, index } => f
                .debug_struct("Index")
                .field("base", &self.at(*base))
                .field("index", &self.at(*index))
                .finish(),
            Expr::Slice { base, msb, lsb } => f
                .debug_struct("Slice")
                .field("base", &self.at(*base))
                .field("msb", &self.at(*msb))
                .field("lsb", &self.at(*lsb))
                .finish(),
            Expr::Concat(parts) => f.debug_tuple("Concat").field(&self.list(parts)).finish(),
            Expr::Repeat { count, value } => f
                .debug_struct("Repeat")
                .field("count", &self.at(*count))
                .field("value", &self.at(*value))
                .finish(),
            Expr::Call { name, args } => f
                .debug_struct("Call")
                .field("name", &self.symbols.resolve(*name))
                .field("args", &self.list(args))
                .finish(),
            Expr::StringLit(s) => f.debug_tuple("StringLit").field(s).finish(),
        }
    }
}

struct ExprListDebug<'a> {
    arena: &'a ExprArena,
    symbols: &'a Interner,
    ids: &'a [ExprId],
}

impl std::fmt::Debug for ExprListDebug<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.ids.iter().map(|&id| ExprDebug {
                arena: self.arena,
                symbols: self.symbols,
                id,
            }))
            .finish()
    }
}

/// Where a parser puts the expressions it builds.
///
/// The production allocator is [`ExprArena`] (one `Vec` push per node); the
/// benchmark baseline [`BoxedExprAlloc`] reproduces the retired frontend's
/// allocation pattern — one heap `Box` per node — so `bench_parse` can
/// report the arena's speedup against a faithful boxed build of the *same*
/// parser, and property tests can assert the two produce identical modules.
pub trait ExprAlloc: Default {
    /// Stores an expression, returning its id.
    fn alloc(&mut self, expr: Expr) -> ExprId;

    /// Finalises the allocation into the arena the module will own.
    fn finish(self) -> ExprArena;
}

impl ExprAlloc for ExprArena {
    fn alloc(&mut self, expr: Expr) -> ExprId {
        ExprArena::alloc(self, expr)
    }

    fn finish(self) -> ExprArena {
        self
    }
}

/// The boxed-allocation baseline: every node costs one `Box` (the retired
/// reference frontend's cost model), then the boxes are gathered into a
/// regular arena so downstream consumers see identical modules.
#[derive(Debug, Default)]
pub struct BoxedExprAlloc {
    // One heap allocation per node is the entire point of this baseline.
    #[allow(clippy::vec_box)]
    nodes: Vec<Box<Expr>>,
}

impl ExprAlloc for BoxedExprAlloc {
    fn alloc(&mut self, expr: Expr) -> ExprId {
        let id = u32::try_from(self.nodes.len()).expect("more than u32::MAX expressions");
        self.nodes.push(Box::new(expr));
        ExprId(id)
    }

    fn finish(self) -> ExprArena {
        ExprArena {
            nodes: self.nodes.into_iter().map(|b| *b).collect(),
        }
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

/// A packed range `[msb:lsb]`. Both bounds are expressions so parameterised
/// widths (`[WIDTH-1:0]`) survive parsing; they are evaluated at elaboration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Most significant bound.
    pub msb: ExprId,
    /// Least significant bound.
    pub lsb: ExprId,
}

/// A port of a module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port name.
    pub name: Symbol,
    /// Direction.
    pub direction: PortDirection,
    /// Packed range, if the port is a vector.
    pub range: Option<Range>,
    /// Whether the port was declared `reg`.
    pub is_reg: bool,
    /// Whether the port was declared `signed`.
    pub signed: bool,
}

/// Kinds of net/variable declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
    /// `integer`
    Integer,
    /// `genvar`
    Genvar,
}

/// One declared net or variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Name of the net.
    pub name: Symbol,
    /// Declaration kind.
    pub kind: NetKind,
    /// Packed range, if any.
    pub range: Option<Range>,
    /// Unpacked (memory) range, if any — `reg [7:0] mem [0:15]`.
    pub array: Option<Range>,
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional initialiser (e.g. `wire x = a & b;`).
    pub init: Option<ExprId>,
}

/// A declaration statement, possibly declaring several nets and possibly
/// doubling as a non-ANSI port direction declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Declaration {
    /// Port direction if this is (also) a port declaration.
    pub direction: Option<PortDirection>,
    /// The declared nets.
    pub nets: Vec<Net>,
}

/// Edge qualifier inside a sensitivity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// `posedge sig`
    Posedge,
    /// `negedge sig`
    Negedge,
    /// Level sensitivity (plain signal name).
    Level,
}

/// The sensitivity list of an `always` block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SensitivityList {
    /// `(edge, signal)` entries.
    pub entries: Vec<(EdgeKind, Symbol)>,
    /// Whether the list was `@*` or `@(*)`.
    pub star: bool,
}

impl SensitivityList {
    /// Whether any entry is edge-triggered, i.e. this is sequential logic.
    pub fn is_edge_triggered(&self) -> bool {
        self.entries
            .iter()
            .any(|(edge, _)| matches!(edge, EdgeKind::Posedge | EdgeKind::Negedge))
    }
}

/// Case statement flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// `case`
    Case,
    /// `casez`
    Casez,
    /// `casex`
    Casex,
}

/// One arm of a case statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Match labels (empty for the `default` arm).
    pub labels: Vec<ExprId>,
    /// Body executed when a label matches.
    pub body: Statement,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `begin ... end`
    Block(Vec<Statement>),
    /// Blocking assignment `lhs = rhs;`
    Blocking {
        /// Assignment target (identifier, bit/part select or concatenation).
        target: ExprId,
        /// Right-hand side.
        value: ExprId,
    },
    /// Non-blocking assignment `lhs <= rhs;`
    NonBlocking {
        /// Assignment target.
        target: ExprId,
        /// Right-hand side.
        value: ExprId,
    },
    /// `if (c) s [else s]`
    If {
        /// Condition expression.
        condition: ExprId,
        /// Taken branch.
        then_branch: Box<Statement>,
        /// Optional else branch.
        else_branch: Option<Box<Statement>>,
    },
    /// `case (subject) ... endcase`
    Case {
        /// Case flavour (`case`, `casez`, `casex`).
        kind: CaseKind,
        /// Subject expression.
        subject: ExprId,
        /// Arms, including a possible default arm (empty labels).
        arms: Vec<CaseArm>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Initialisation assignment.
        init: Box<Statement>,
        /// Loop condition.
        condition: ExprId,
        /// Step assignment.
        step: Box<Statement>,
        /// Loop body.
        body: Box<Statement>,
    },
    /// A system task call such as `$display(...)`; ignored by the interpreter.
    SystemCall {
        /// Task name including the `$`.
        name: Symbol,
        /// Arguments (kept for fidelity, unused).
        args: Vec<ExprId>,
    },
    /// An empty statement (`;`).
    Empty,
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlwaysBlock {
    /// Sensitivity list.
    pub sensitivity: SensitivityList,
    /// Body statement (usually a block).
    pub body: Statement,
}

/// A named parameter with its default value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    /// Parameter name.
    pub name: Symbol,
    /// Default value expression.
    pub value: ExprId,
    /// Whether declared `localparam`.
    pub local: bool,
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module: Symbol,
    /// Instance name.
    pub name: Symbol,
    /// Named connections `.port(expr)`; `None` for unconnected `.port()`.
    pub named_connections: Vec<(Symbol, Option<ExprId>)>,
    /// Ordered (positional) connections, if the named form was not used.
    pub ordered_connections: Vec<ExprId>,
    /// Parameter overrides `#(.P(v))`; `None` names a positional override.
    pub parameter_overrides: Vec<(Option<Symbol>, ExprId)>,
}

/// A top-level item inside a module body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModuleItem {
    /// Net/variable (and non-ANSI port) declaration.
    Declaration(Declaration),
    /// `parameter` / `localparam`.
    Parameter(Parameter),
    /// `assign lhs = rhs;`
    ContinuousAssign {
        /// Assignment target.
        target: ExprId,
        /// Driven value.
        value: ExprId,
    },
    /// `always @(...) ...`
    Always(AlwaysBlock),
    /// `initial ...`
    Initial(Statement),
    /// Module instantiation.
    Instance(Instance),
    /// A generate region; contents are kept but not elaborated.
    Generate(Vec<ModuleItem>),
}

/// A Verilog module: its header and items plus the expression arena and
/// identifier interner every [`ExprId`] and [`Symbol`] inside it resolves
/// against. Modules parsed from one source file share the interner (an
/// [`Arc`] clone), which is what lets the lint engine resolve instance
/// references between sibling modules without string hashing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Module {
    /// Module name.
    pub name: Name,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<ModuleItem>,
    /// The expression store backing every [`ExprId`] in this module.
    pub arena: ExprArena,
    /// Resolves every [`Symbol`] in this module (shared per source file).
    pub symbols: Arc<Interner>,
}

impl Module {
    /// The spelling of a symbol of this module.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// The spelling of a symbol as a cheap-clone [`Name`].
    pub fn name_of(&self, sym: Symbol) -> Name {
        self.symbols.name(sym)
    }

    /// Returns the port with the given name, if present.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports
            .iter()
            .find(|p| self.symbols.resolve(p.name) == name)
    }

    /// Names of all input ports, in declaration order.
    pub fn input_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Input)
            .map(|p| self.symbols.resolve(p.name))
            .collect()
    }

    /// Names of all output ports, in declaration order.
    pub fn output_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Output)
            .map(|p| self.symbols.resolve(p.name))
            .collect()
    }

    /// Iterates over all instantiations in the module (including inside
    /// generate regions).
    pub fn instances(&self) -> Vec<&Instance> {
        fn walk<'a>(items: &'a [ModuleItem], out: &mut Vec<&'a Instance>) {
            for item in items {
                match item {
                    ModuleItem::Instance(inst) => out.push(inst),
                    ModuleItem::Generate(inner) => walk(inner, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.items, &mut out);
        out
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,        // !
    BitNot,     // ~
    Negate,     // -
    Plus,       // +
    ReduceAnd,  // &
    ReduceOr,   // |
    ReduceXor,  // ^
    ReduceNand, // ~&
    ReduceNor,  // ~|
    ReduceXnor, // ~^ or ^~
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    And,
    Or,
    Xor,
    Xnor,
    LogicalAnd,
    LogicalOr,
    Eq,
    Neq,
    CaseEq,
    CaseNeq,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AShl,
    AShr,
}

/// An expression node. Child positions are [`ExprId`]s into the owning
/// [`ExprArena`]; identifier payloads are interned [`Symbol`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal with an optional declared width. `x`/`z` bits are
    /// represented as zero (the interpreter is two-state).
    Number {
        /// Literal value.
        value: u64,
        /// Declared width in bits, if the literal was sized.
        width: Option<u32>,
    },
    /// A based literal containing `x`/`z`/`?` digits (e.g. `4'b1?0x`).
    ///
    /// `value` holds the known bits with wildcard positions at zero, so the
    /// two-state interpreter and constant folder treat a pattern exactly
    /// like the equivalent [`Expr::Number`]; the masks record which bits
    /// were spelled `x` and which `z`/`?`, which is what `casez`/`casex`
    /// subsumption analysis needs.
    Pattern {
        /// Known bits (wildcard positions are zero).
        value: u64,
        /// Bits spelled `x`/`X`.
        x_mask: u64,
        /// Bits spelled `z`/`Z`/`?`.
        z_mask: u64,
        /// Declared width in bits, if the literal was sized.
        width: Option<u32>,
    },
    /// An identifier reference.
    Ident(Symbol),
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: ExprId,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// The ternary conditional `c ? a : b`.
    Ternary {
        /// Condition.
        condition: ExprId,
        /// Value when true.
        then_expr: ExprId,
        /// Value when false.
        else_expr: ExprId,
    },
    /// Bit-select or memory index `base[index]`.
    Index {
        /// Selected base expression.
        base: ExprId,
        /// Index expression.
        index: ExprId,
    },
    /// Constant part-select `base[msb:lsb]`.
    Slice {
        /// Selected base expression.
        base: ExprId,
        /// Most significant bound.
        msb: ExprId,
        /// Least significant bound.
        lsb: ExprId,
    },
    /// Concatenation `{a, b, c}`.
    Concat(Vec<ExprId>),
    /// Replication `{n{expr}}`.
    Repeat {
        /// Replication count.
        count: ExprId,
        /// Replicated expression.
        value: ExprId,
    },
    /// A function or system-function call.
    Call {
        /// Callee name.
        name: Symbol,
        /// Arguments.
        args: Vec<ExprId>,
    },
    /// A string literal (only meaningful to system tasks).
    StringLit(String),
}

impl Expr {
    /// Convenience constructor for an unsized number.
    pub fn number(value: u64) -> Self {
        Expr::Number { value, width: None }
    }

    /// Convenience constructor for an identifier.
    pub fn ident(sym: Symbol) -> Self {
        Expr::Ident(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_port_lookup_and_direction_lists() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let y = interner.intern("y");
        let module = Module {
            name: "m".into(),
            ports: vec![
                Port {
                    name: a,
                    direction: PortDirection::Input,
                    range: None,
                    is_reg: false,
                    signed: false,
                },
                Port {
                    name: y,
                    direction: PortDirection::Output,
                    range: None,
                    is_reg: true,
                    signed: false,
                },
            ],
            items: vec![],
            arena: ExprArena::new(),
            symbols: Arc::new(interner),
        };
        assert!(module.port("a").is_some());
        assert!(module.port("zzz").is_none());
        assert_eq!(module.input_names(), vec!["a"]);
        assert_eq!(module.output_names(), vec!["y"]);
        assert_eq!(module.resolve(y), "y");
        assert_eq!(module.name_of(a), "a");
    }

    #[test]
    fn sensitivity_list_edge_detection() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let clk = interner.intern("clk");
        let comb = SensitivityList {
            entries: vec![(EdgeKind::Level, a)],
            star: false,
        };
        assert!(!comb.is_edge_triggered());
        let seq = SensitivityList {
            entries: vec![(EdgeKind::Posedge, clk)],
            star: false,
        };
        assert!(seq.is_edge_triggered());
    }

    #[test]
    fn arena_collects_referenced_identifiers() {
        let mut interner = Interner::new();
        let mut arena = ExprArena::new();
        let a = interner.intern("a");
        let sel = interner.intern("sel");
        let b = interner.intern("b");
        let lhs = arena.alloc(Expr::ident(a));
        let condition = arena.alloc(Expr::ident(sel));
        let then_expr = arena.alloc(Expr::ident(b));
        let else_expr = arena.alloc(Expr::number(1));
        let ternary = arena.alloc(Expr::Ternary {
            condition,
            then_expr,
            else_expr,
        });
        let root = arena.alloc(Expr::Binary {
            op: BinaryOp::Add,
            lhs,
            rhs: ternary,
        });
        assert_eq!(arena.referenced_idents(root), vec![a, sel, b]);
        assert_eq!(arena.len(), 6);
        assert!(arena.get(root).is_some());
    }

    #[test]
    fn boxed_alloc_produces_the_same_arena() {
        let build = |alloc: &mut dyn FnMut(Expr) -> ExprId| {
            let one = alloc(Expr::number(1));
            let two = alloc(Expr::number(2));
            alloc(Expr::Binary {
                op: BinaryOp::Mul,
                lhs: one,
                rhs: two,
            })
        };
        let mut arena = ExprArena::new();
        build(&mut |e| arena.alloc(e));
        let mut boxed = BoxedExprAlloc::default();
        build(&mut |e| boxed.alloc(e));
        assert_eq!(arena.finish(), boxed.finish());
    }

    #[test]
    fn expr_debug_renders_the_tree() {
        let mut interner = Interner::new();
        let mut arena = ExprArena::new();
        let mem = interner.intern("mem");
        let base = arena.alloc(Expr::ident(mem));
        let index = arena.alloc(Expr::number(0));
        let root = arena.alloc(Expr::Index { base, index });
        assert_eq!(
            format!("{:?}", arena.expr_debug(&interner, root)),
            "Index { base: Ident(\"mem\"), index: Number { value: 0, width: None } }"
        );
    }

    #[test]
    fn instances_are_found_inside_generate_blocks() {
        let mut interner = Interner::new();
        let sub = interner.intern("sub");
        let u0 = interner.intern("u0");
        let inst = Instance {
            module: sub,
            name: u0,
            named_connections: vec![],
            ordered_connections: vec![],
            parameter_overrides: vec![],
        };
        let module = Module {
            name: "top".into(),
            ports: vec![],
            items: vec![ModuleItem::Generate(vec![ModuleItem::Instance(inst)])],
            arena: ExprArena::new(),
            symbols: Arc::new(interner),
        };
        assert_eq!(module.instances().len(), 1);
    }
}
