//! Abstract syntax tree for the supported Verilog subset.
//!
//! The subset is the synthesisable core that the paper's datasets and
//! benchmark problems are written in: module declarations with ANSI or
//! non-ANSI port lists, parameter/localparam declarations, `wire`/`reg`
//! declarations (with packed ranges and simple memories), continuous
//! assignments, `always` blocks (combinational and edge-triggered),
//! `initial` blocks, module instantiations and the usual expression
//! operators.

use serde::{Deserialize, Serialize};

use crate::intern::Name;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

/// A packed range `[msb:lsb]`. Both bounds are expressions so parameterised
/// widths (`[WIDTH-1:0]`) survive parsing; they are evaluated at elaboration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Most significant bound.
    pub msb: Expr,
    /// Least significant bound.
    pub lsb: Expr,
}

/// A port of a module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port name.
    pub name: Name,
    /// Direction.
    pub direction: PortDirection,
    /// Packed range, if the port is a vector.
    pub range: Option<Range>,
    /// Whether the port was declared `reg`.
    pub is_reg: bool,
    /// Whether the port was declared `signed`.
    pub signed: bool,
}

/// Kinds of net/variable declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
    /// `integer`
    Integer,
    /// `genvar`
    Genvar,
}

/// One declared net or variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Name of the net.
    pub name: Name,
    /// Declaration kind.
    pub kind: NetKind,
    /// Packed range, if any.
    pub range: Option<Range>,
    /// Unpacked (memory) range, if any — `reg [7:0] mem [0:15]`.
    pub array: Option<Range>,
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional initialiser (e.g. `wire x = a & b;`).
    pub init: Option<Expr>,
}

/// A declaration statement, possibly declaring several nets and possibly
/// doubling as a non-ANSI port direction declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Declaration {
    /// Port direction if this is (also) a port declaration.
    pub direction: Option<PortDirection>,
    /// The declared nets.
    pub nets: Vec<Net>,
}

/// Edge qualifier inside a sensitivity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// `posedge sig`
    Posedge,
    /// `negedge sig`
    Negedge,
    /// Level sensitivity (plain signal name).
    Level,
}

/// The sensitivity list of an `always` block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SensitivityList {
    /// `(edge, signal)` entries.
    pub entries: Vec<(EdgeKind, Name)>,
    /// Whether the list was `@*` or `@(*)`.
    pub star: bool,
}

impl SensitivityList {
    /// Whether any entry is edge-triggered, i.e. this is sequential logic.
    pub fn is_edge_triggered(&self) -> bool {
        self.entries
            .iter()
            .any(|(edge, _)| matches!(edge, EdgeKind::Posedge | EdgeKind::Negedge))
    }
}

/// Case statement flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// `case`
    Case,
    /// `casez`
    Casez,
    /// `casex`
    Casex,
}

/// One arm of a case statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Match labels (empty for the `default` arm).
    pub labels: Vec<Expr>,
    /// Body executed when a label matches.
    pub body: Statement,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `begin ... end`
    Block(Vec<Statement>),
    /// Blocking assignment `lhs = rhs;`
    Blocking {
        /// Assignment target (identifier, bit/part select or concatenation).
        target: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// Non-blocking assignment `lhs <= rhs;`
    NonBlocking {
        /// Assignment target.
        target: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (c) s [else s]`
    If {
        /// Condition expression.
        condition: Expr,
        /// Taken branch.
        then_branch: Box<Statement>,
        /// Optional else branch.
        else_branch: Option<Box<Statement>>,
    },
    /// `case (subject) ... endcase`
    Case {
        /// Case flavour (`case`, `casez`, `casex`).
        kind: CaseKind,
        /// Subject expression.
        subject: Expr,
        /// Arms, including a possible default arm (empty labels).
        arms: Vec<CaseArm>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Initialisation assignment.
        init: Box<Statement>,
        /// Loop condition.
        condition: Expr,
        /// Step assignment.
        step: Box<Statement>,
        /// Loop body.
        body: Box<Statement>,
    },
    /// A system task call such as `$display(...)`; ignored by the interpreter.
    SystemCall {
        /// Task name including the `$`.
        name: Name,
        /// Arguments (kept for fidelity, unused).
        args: Vec<Expr>,
    },
    /// An empty statement (`;`).
    Empty,
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlwaysBlock {
    /// Sensitivity list.
    pub sensitivity: SensitivityList,
    /// Body statement (usually a block).
    pub body: Statement,
}

/// A named parameter with its default value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    /// Parameter name.
    pub name: Name,
    /// Default value expression.
    pub value: Expr,
    /// Whether declared `localparam`.
    pub local: bool,
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module: Name,
    /// Instance name.
    pub name: Name,
    /// Named connections `.port(expr)`; `None` for unconnected `.port()`.
    pub named_connections: Vec<(Name, Option<Expr>)>,
    /// Ordered (positional) connections, if the named form was not used.
    pub ordered_connections: Vec<Expr>,
    /// Parameter overrides `#(.P(v))`.
    pub parameter_overrides: Vec<(Name, Expr)>,
}

/// A top-level item inside a module body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModuleItem {
    /// Net/variable (and non-ANSI port) declaration.
    Declaration(Declaration),
    /// `parameter` / `localparam`.
    Parameter(Parameter),
    /// `assign lhs = rhs;`
    ContinuousAssign {
        /// Assignment target.
        target: Expr,
        /// Driven value.
        value: Expr,
    },
    /// `always @(...) ...`
    Always(AlwaysBlock),
    /// `initial ...`
    Initial(Statement),
    /// Module instantiation.
    Instance(Instance),
    /// A generate region; contents are kept but not elaborated.
    Generate(Vec<ModuleItem>),
}

/// A Verilog module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Module {
    /// Module name.
    pub name: Name,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<ModuleItem>,
}

impl Module {
    /// Returns the port with the given name, if present.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Names of all input ports, in declaration order.
    pub fn input_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Input)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of all output ports, in declaration order.
    pub fn output_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Output)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Iterates over all instantiations in the module (including inside
    /// generate regions).
    pub fn instances(&self) -> Vec<&Instance> {
        fn walk<'a>(items: &'a [ModuleItem], out: &mut Vec<&'a Instance>) {
            for item in items {
                match item {
                    ModuleItem::Instance(inst) => out.push(inst),
                    ModuleItem::Generate(inner) => walk(inner, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.items, &mut out);
        out
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,        // !
    BitNot,     // ~
    Negate,     // -
    Plus,       // +
    ReduceAnd,  // &
    ReduceOr,   // |
    ReduceXor,  // ^
    ReduceNand, // ~&
    ReduceNor,  // ~|
    ReduceXnor, // ~^ or ^~
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    And,
    Or,
    Xor,
    Xnor,
    LogicalAnd,
    LogicalOr,
    Eq,
    Neq,
    CaseEq,
    CaseNeq,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AShl,
    AShr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal with an optional declared width. `x`/`z` bits are
    /// represented as zero (the interpreter is two-state).
    Number {
        /// Literal value.
        value: u64,
        /// Declared width in bits, if the literal was sized.
        width: Option<u32>,
    },
    /// An identifier reference.
    Ident(Name),
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// The ternary conditional `c ? a : b`.
    Ternary {
        /// Condition.
        condition: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// Bit-select or memory index `base[index]`.
    Index {
        /// Selected base expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Constant part-select `base[msb:lsb]`.
    Slice {
        /// Selected base expression.
        base: Box<Expr>,
        /// Most significant bound.
        msb: Box<Expr>,
        /// Least significant bound.
        lsb: Box<Expr>,
    },
    /// Concatenation `{a, b, c}`.
    Concat(Vec<Expr>),
    /// Replication `{n{expr}}`.
    Repeat {
        /// Replication count.
        count: Box<Expr>,
        /// Replicated expression.
        value: Box<Expr>,
    },
    /// A function or system-function call.
    Call {
        /// Callee name.
        name: Name,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A string literal (only meaningful to system tasks).
    StringLit(String),
}

impl Expr {
    /// Convenience constructor for an unsized number.
    pub fn number(value: u64) -> Self {
        Expr::Number { value, width: None }
    }

    /// Convenience constructor for an identifier.
    pub fn ident(name: impl Into<Name>) -> Self {
        Expr::Ident(name.into())
    }

    /// Collects the names of all identifiers referenced by this expression.
    pub fn referenced_idents(&self) -> Vec<Name> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents(&self, out: &mut Vec<Name>) {
        match self {
            Expr::Ident(name) => out.push(name.clone()),
            Expr::Number { .. } | Expr::StringLit(_) => {}
            Expr::Unary { operand, .. } => operand.collect_idents(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_idents(out);
                rhs.collect_idents(out);
            }
            Expr::Ternary {
                condition,
                then_expr,
                else_expr,
            } => {
                condition.collect_idents(out);
                then_expr.collect_idents(out);
                else_expr.collect_idents(out);
            }
            Expr::Index { base, index } => {
                base.collect_idents(out);
                index.collect_idents(out);
            }
            Expr::Slice { base, msb, lsb } => {
                base.collect_idents(out);
                msb.collect_idents(out);
                lsb.collect_idents(out);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_idents(out);
                }
            }
            Expr::Repeat { count, value } => {
                count.collect_idents(out);
                value.collect_idents(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_idents(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_port_lookup_and_direction_lists() {
        let module = Module {
            name: "m".into(),
            ports: vec![
                Port {
                    name: "a".into(),
                    direction: PortDirection::Input,
                    range: None,
                    is_reg: false,
                    signed: false,
                },
                Port {
                    name: "y".into(),
                    direction: PortDirection::Output,
                    range: None,
                    is_reg: true,
                    signed: false,
                },
            ],
            items: vec![],
        };
        assert!(module.port("a").is_some());
        assert!(module.port("zzz").is_none());
        assert_eq!(module.input_names(), vec!["a"]);
        assert_eq!(module.output_names(), vec!["y"]);
    }

    #[test]
    fn sensitivity_list_edge_detection() {
        let comb = SensitivityList {
            entries: vec![(EdgeKind::Level, "a".into())],
            star: false,
        };
        assert!(!comb.is_edge_triggered());
        let seq = SensitivityList {
            entries: vec![(EdgeKind::Posedge, "clk".into())],
            star: false,
        };
        assert!(seq.is_edge_triggered());
    }

    #[test]
    fn expr_collects_referenced_identifiers() {
        let e = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::ident("a")),
            rhs: Box::new(Expr::Ternary {
                condition: Box::new(Expr::ident("sel")),
                then_expr: Box::new(Expr::ident("b")),
                else_expr: Box::new(Expr::number(1)),
            }),
        };
        let ids = e.referenced_idents();
        assert_eq!(ids, vec!["a", "sel", "b"]);
    }

    #[test]
    fn instances_are_found_inside_generate_blocks() {
        let inst = Instance {
            module: "sub".into(),
            name: "u0".into(),
            named_connections: vec![],
            ordered_connections: vec![],
            parameter_overrides: vec![],
        };
        let module = Module {
            name: "top".into(),
            ports: vec![],
            items: vec![ModuleItem::Generate(vec![ModuleItem::Instance(inst)])],
        };
        assert_eq!(module.instances().len(), 1);
    }
}
