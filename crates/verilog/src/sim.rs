//! Test-vector driven simulation on top of the behavioural interpreter.
//!
//! The VerilogEval-style functional evaluation needs exactly one capability:
//! apply stimulus to a device under test, optionally pulse a clock, and
//! compare the observed outputs against a golden reference. [`Simulator`]
//! wraps [`crate::interp::CompiledModule`] with that workflow and
//! [`Testbench`] runs whole vector suites.

use serde::{Deserialize, Serialize};

use crate::ast::{EdgeKind, Module, PortDirection};
use crate::interp::{CompiledModule, EvalError, EvalState, Value};

/// An interactive simulator for one module.
///
/// # Example
///
/// ```
/// use verilog::{Parser, Simulator};
///
/// let module = &Parser::parse_source(
///     "module counter(input clk, input rst, output reg [3:0] q);\n\
///      always @(posedge clk) begin if (rst) q <= 0; else q <= q + 1; end endmodule",
/// )?[0];
/// let mut sim = Simulator::new(module)?;
/// sim.poke("rst", 1)?;
/// sim.clock("clk")?;
/// sim.poke("rst", 0)?;
/// sim.clock("clk")?;
/// sim.clock("clk")?;
/// assert_eq!(sim.peek("q")?, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    compiled: CompiledModule,
    state: EvalState,
}

impl Simulator {
    /// Elaborates `module` and initialises its state.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and initialisation errors from the interpreter.
    pub fn new(module: &Module) -> Result<Self, EvalError> {
        let compiled = CompiledModule::elaborate(module)?;
        let state = compiled.initial_state()?;
        Ok(Self { compiled, state })
    }

    /// The elaborated module.
    pub fn compiled(&self) -> &CompiledModule {
        &self.compiled
    }

    /// Sets an input signal and fires any edge-triggered processes that are
    /// sensitive to the resulting transition, then settles combinational
    /// logic.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnknownSignal`] if the signal does not exist.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), EvalError> {
        let width = self
            .compiled
            .signal_width(name)
            .ok_or_else(|| EvalError::UnknownSignal(name.to_string()))?;
        let old = self.state.get(name).map(|v| v.is_true()).unwrap_or(false);
        let new_value = Value::new(value, width);
        self.state.set(name, new_value);
        let new = new_value.is_true();
        if !old && new {
            self.compiled
                .trigger_edge(name, EdgeKind::Posedge, &mut self.state)?;
        } else if old && !new {
            self.compiled
                .trigger_edge(name, EdgeKind::Negedge, &mut self.state)?;
        } else {
            self.compiled.settle(&mut self.state)?;
        }
        Ok(())
    }

    /// Reads a signal value as raw bits.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnknownSignal`] if the signal does not exist.
    pub fn peek(&self, name: &str) -> Result<u64, EvalError> {
        self.state
            .get(name)
            .map(|v| v.bits())
            .ok_or_else(|| EvalError::UnknownSignal(name.to_string()))
    }

    /// Pulses `clock` low→high→low, which fires posedge processes once and
    /// negedge processes once.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock(&mut self, clock: &str) -> Result<(), EvalError> {
        self.poke(clock, 1)?;
        self.poke(clock, 0)?;
        Ok(())
    }

    /// Re-settles combinational logic without changing any input.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn settle(&mut self) -> Result<(), EvalError> {
        self.compiled.settle(&mut self.state)
    }

    /// Names of the module's input ports (excluding the named clock, if any).
    pub fn input_ports(&self) -> Vec<String> {
        self.compiled
            .ports()
            .iter()
            .filter(|(_, dir, _)| *dir == PortDirection::Input)
            .map(|(name, _, _)| name.clone())
            .collect()
    }

    /// Names of the module's output ports.
    pub fn output_ports(&self) -> Vec<String> {
        self.compiled
            .ports()
            .iter()
            .filter(|(_, dir, _)| *dir == PortDirection::Output)
            .map(|(name, _, _)| name.clone())
            .collect()
    }
}

/// A single stimulus/response vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TestVector {
    /// `(signal, value)` pairs applied before evaluation.
    pub inputs: Vec<(String, u64)>,
    /// Number of clock pulses applied after the inputs (0 for purely
    /// combinational checks).
    pub clock_cycles: u32,
    /// `(signal, expected value)` pairs compared after evaluation.
    pub expected: Vec<(String, u64)>,
}

impl TestVector {
    /// Creates a combinational vector (no clocking).
    pub fn combinational(inputs: Vec<(String, u64)>, expected: Vec<(String, u64)>) -> Self {
        Self {
            inputs,
            clock_cycles: 0,
            expected,
        }
    }

    /// Creates a clocked vector.
    pub fn clocked(
        inputs: Vec<(String, u64)>,
        clock_cycles: u32,
        expected: Vec<(String, u64)>,
    ) -> Self {
        Self {
            inputs,
            clock_cycles,
            expected,
        }
    }
}

/// The result of running one vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorOutcome {
    /// Index of the vector in the testbench.
    pub index: usize,
    /// Whether every expectation held.
    pub passed: bool,
    /// `(signal, expected, actual)` for every mismatch.
    pub mismatches: Vec<(String, u64, u64)>,
}

/// An ordered collection of test vectors, optionally clocked.
///
/// # Example
///
/// ```
/// use verilog::{Parser, Testbench, TestVector};
///
/// let module = &Parser::parse_source(
///     "module andgate(input a, input b, output y); assign y = a & b; endmodule",
/// )?[0];
/// let tb = Testbench::combinational(vec![
///     TestVector::combinational(vec![("a".into(), 1), ("b".into(), 1)], vec![("y".into(), 1)]),
///     TestVector::combinational(vec![("a".into(), 1), ("b".into(), 0)], vec![("y".into(), 0)]),
/// ]);
/// assert!(tb.passes(module)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Testbench {
    /// Clock signal name for sequential designs.
    pub clock: Option<String>,
    /// The vectors, applied in order against a single simulator instance
    /// (state persists between vectors, as in a real testbench).
    pub vectors: Vec<TestVector>,
}

impl Testbench {
    /// Creates a purely combinational testbench.
    pub fn combinational(vectors: Vec<TestVector>) -> Self {
        Self {
            clock: None,
            vectors,
        }
    }

    /// Creates a clocked testbench driving the named clock signal.
    pub fn clocked(clock: impl Into<String>, vectors: Vec<TestVector>) -> Self {
        Self {
            clock: Some(clock.into()),
            vectors,
        }
    }

    /// Runs the testbench against `module`, returning one outcome per vector.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the module cannot be elaborated or a
    /// referenced signal does not exist.
    pub fn run(&self, module: &Module) -> Result<Vec<VectorOutcome>, EvalError> {
        let mut sim = Simulator::new(module)?;
        let mut outcomes = Vec::with_capacity(self.vectors.len());
        for (index, vector) in self.vectors.iter().enumerate() {
            for (name, value) in &vector.inputs {
                sim.poke(name, *value)?;
            }
            if let Some(clock) = &self.clock {
                for _ in 0..vector.clock_cycles {
                    sim.clock(clock)?;
                }
            }
            sim.settle()?;
            let mut mismatches = Vec::new();
            for (name, expected) in &vector.expected {
                let actual = sim.peek(name)?;
                if actual != *expected {
                    mismatches.push((name.clone(), *expected, actual));
                }
            }
            outcomes.push(VectorOutcome {
                index,
                passed: mismatches.is_empty(),
                mismatches,
            });
        }
        Ok(outcomes)
    }

    /// Convenience predicate: does `module` pass every vector?
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Testbench::run`].
    pub fn passes(&self, module: &Module) -> Result<bool, EvalError> {
        Ok(self.run(module)?.iter().all(|o| o.passed))
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the testbench has no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;

    fn module(src: &str) -> Module {
        Parser::parse_source(src).expect("parse").remove(0)
    }

    #[test]
    fn combinational_testbench_passes_and_fails_correctly() {
        let good =
            module("module xorgate(input a, input b, output y); assign y = a ^ b; endmodule");
        let bad = module("module xorgate(input a, input b, output y); assign y = a & b; endmodule");
        let tb = Testbench::combinational(vec![
            TestVector::combinational(
                vec![("a".into(), 0), ("b".into(), 1)],
                vec![("y".into(), 1)],
            ),
            TestVector::combinational(
                vec![("a".into(), 1), ("b".into(), 1)],
                vec![("y".into(), 0)],
            ),
        ]);
        assert!(tb.passes(&good).unwrap());
        assert!(!tb.passes(&bad).unwrap());
        let outcomes = tb.run(&bad).unwrap();
        assert!(!outcomes[0].passed);
        assert_eq!(outcomes[0].mismatches[0].0, "y");
        assert_eq!(tb.len(), 2);
        assert!(!tb.is_empty());
    }

    #[test]
    fn clocked_testbench_drives_state_machine() {
        let counter = module(
            "module counter(input clk, input rst, output reg [3:0] q);\n\
             always @(posedge clk) begin if (rst) q <= 0; else q <= q + 1; end endmodule",
        );
        let tb = Testbench::clocked(
            "clk",
            vec![
                TestVector::clocked(vec![("rst".into(), 1)], 1, vec![("q".into(), 0)]),
                TestVector::clocked(vec![("rst".into(), 0)], 3, vec![("q".into(), 3)]),
                TestVector::clocked(vec![], 2, vec![("q".into(), 5)]),
            ],
        );
        assert!(tb.passes(&counter).unwrap());
    }

    #[test]
    fn simulator_poke_detects_async_reset_edge() {
        let dff = module(
            "module dff(input clk, input arst, input d, output reg q);\n\
             always @(posedge clk, posedge arst) begin if (arst) q <= 0; else q <= d; end endmodule",
        );
        let mut sim = Simulator::new(&dff).unwrap();
        sim.poke("d", 1).unwrap();
        sim.clock("clk").unwrap();
        assert_eq!(sim.peek("q").unwrap(), 1);
        // Raising the asynchronous reset clears q without a clock edge.
        sim.poke("arst", 1).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0);
    }

    #[test]
    fn unknown_signal_reports_error() {
        let m = module("module m(input a, output y); assign y = a; endmodule");
        let mut sim = Simulator::new(&m).unwrap();
        assert!(sim.poke("nonexistent", 1).is_err());
        assert!(sim.peek("nonexistent").is_err());
        assert_eq!(sim.input_ports(), vec!["a"]);
        assert_eq!(sim.output_ports(), vec!["y"]);
    }

    #[test]
    fn state_persists_between_vectors() {
        let accumulator = module(
            "module acc(input clk, input [3:0] d, output reg [7:0] sum);\n\
             always @(posedge clk) sum <= sum + d; endmodule",
        );
        let tb = Testbench::clocked(
            "clk",
            vec![
                TestVector::clocked(vec![("d".into(), 3)], 1, vec![("sum".into(), 3)]),
                TestVector::clocked(vec![("d".into(), 4)], 1, vec![("sum".into(), 7)]),
            ],
        );
        assert!(tb.passes(&accumulator).unwrap());
    }
}
