//! Regression: the semantic lint engine over a real-world-shaped gate-level
//! netlist (ITC'99 b01 style).
//!
//! Synthesised netlists are the adversarial input for a linter: non-ANSI
//! port lists, indexed lvalue connections into a state-register bus, and
//! instances of library cells defined in a separate liberty/cell file. The
//! fixture pins the expected verdict — syntactically valid, and zero lint
//! findings, because every net is driven by a cell output and read by a
//! cell input, and unresolved cell references must be tolerated exactly
//! like `SyntaxChecker` tolerates them.

use verilog::{Linter, ParsedFile, RuleId, Severity, SyntaxChecker};

const B01_NET: &str = include_str!("fixtures/b01_net.v");

/// The netlist parsed once; every check below consumes this shared parse.
fn parsed() -> ParsedFile {
    ParsedFile::parse(B01_NET).expect("b01 netlist parses")
}

#[test]
fn b01_netlist_is_syntactically_valid() {
    let checker = SyntaxChecker::new();
    let report = checker.check_parsed(&parsed()).expect("passes");
    assert_eq!(report.module_names, vec!["b01"]);
    // The parse-once verdict matches the from-source path.
    assert!(checker.is_valid(B01_NET));
    assert_eq!(report, checker.check(B01_NET).expect("passes"));
}

#[test]
fn b01_netlist_parses_with_the_benchmark_interface() {
    let parsed = parsed();
    assert_eq!(parsed.modules().len(), 1);
    let b01 = parsed.first_module().expect("one module");
    assert_eq!(b01.name, "b01");
    let port_names: Vec<&str> = b01.ports.iter().map(|p| b01.resolve(p.name)).collect();
    assert_eq!(
        port_names,
        ["clock", "reset", "line1", "line2", "outp", "overflw"],
        "the ITC'99 b01 interface"
    );
}

#[test]
fn b01_netlist_lints_clean() {
    // The pinned expectation: no findings at any severity. Every internal
    // net has exactly one cell driving it and at least one cell reading
    // it; the unresolved `dff_r`/`and2`/... cell references must count as
    // conservative drives and reads, not as undeclared modules.
    let diagnostics = Linter::new().lint_parsed(&parsed());
    assert!(
        diagnostics.is_empty(),
        "expected a clean netlist, got:\n{}",
        diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn b01_netlist_catches_a_planted_undeclared_net() {
    // Drop n29 from its wire declaration while u29 still drives it and u31
    // still reads it: an undeclared identifier. This guards against the
    // conservative unresolved-cell handling silently swallowing instance
    // connections entirely.
    let broken = B01_NET.replace("wire n26, n27, n28, n29,", "wire n26, n27, n28,");
    assert_ne!(broken, B01_NET, "the mutation must apply");
    let diagnostics = Linter::new().lint_source(&broken).expect("still parses");
    assert!(
        diagnostics.iter().any(|d| d.rule == RuleId::UndeclaredIdent
            && d.severity == Severity::Error
            && d.locus.contains("n29")),
        "an undeclared cell-connection net must be reported, got: {diagnostics:?}"
    );
}

#[test]
fn b01_netlist_catches_a_planted_double_driver() {
    // Two continuous drivers onto an internal net: an error.
    let broken = B01_NET.replace(
        "endmodule",
        "  assign n26 = line1;\n  assign n26 = ~line1;\nendmodule",
    );
    let diagnostics = Linter::new().lint_source(&broken).expect("still parses");
    assert!(
        diagnostics.iter().any(|d| d.rule == RuleId::MultiplyDriven),
        "two continuous assigns onto one net must be multiply-driven, got: {diagnostics:?}"
    );
}
