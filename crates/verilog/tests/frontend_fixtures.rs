//! Pinned-snapshot fixtures for the frontend: parse verdicts, syntax-check
//! verdicts and lint diagnostics over the handwritten corner-case corpus
//! and the b01 netlist, captured from the pre-arena frontend and required
//! byte-identical ever since.
//!
//! The fixture file is regenerated with `FFH_REGEN_FIXTURES=1 cargo test`;
//! a normal run compares against the committed snapshot, so any refactor
//! that changes a parse error, a syntax verdict or a lint message fails
//! here with a diff instead of slipping through.

use std::fmt::Write as _;

use verilog::{Linter, Parser, SyntaxChecker};

const B01_NET: &str = include_str!("fixtures/b01_net.v");

/// The corner-case corpus: operator dispatch, escaped identifiers,
/// strings, attributes, directives, non-ANSI ports, part selects,
/// instances — and sources that must fail with exactly the pinned message.
const CORNER_CASES: &[&str] = &[
    "module m(input signed [7:0] a, output reg [7:0] y);\n\
     always @* begin y = (a <<< 2) >>> 1; y = a ** 2; end\nendmodule",
    "module m(input a, input b, output y);\n\
     assign y = (a !== b) ? a ~^ b : a ^~ b;\nendmodule",
    "`define X 8\nmodule \\weird$name (input a, output y);\n\
     (* keep = \"true\" *) assign y = a;\nendmodule",
    "module m; initial $display(\"a\\\"b\\n\"); endmodule",
    "module m(a, y); input [3:0] a; output [3:0] y;\n\
     assign y[3:1] = a[2:0]; assign y[0] = a[3];\nendmodule",
    "module top(input clk); sub #(.W(4)) u0 (.clk(clk)); endmodule",
    "module m(input a output y); endmodule",
    "module m(input a, output y); assign y = ; endmodule",
    "module m; \"unterminated",
    "module m; assign y = 1 @# 2; endmodule",
    "",
    "not verilog at all",
];

/// Renders one source's complete frontend verdict: parse outcome, syntax
/// check, and lint diagnostics, one line each.
fn render_case(out: &mut String, name: &str, src: &str) {
    writeln!(out, "==== case {name}").unwrap();
    match Parser::parse_source(src) {
        Ok(modules) => {
            let names: Vec<String> = modules.iter().map(|m| m.name.to_string()).collect();
            writeln!(out, "parse: ok modules=[{}]", names.join(", ")).unwrap();
        }
        Err(e) => writeln!(out, "parse: err {e}").unwrap(),
    }
    match SyntaxChecker::new().check(src) {
        Ok(report) => writeln!(
            out,
            "syntax: ok unresolved=[{}]",
            report.unresolved_instances.join(", ")
        )
        .unwrap(),
        Err(e) => writeln!(out, "syntax: err {e}").unwrap(),
    }
    match Linter::new().lint_source(src) {
        Ok(diags) => {
            writeln!(out, "lint: {} findings", diags.len()).unwrap();
            for d in diags {
                writeln!(out, "  {d}").unwrap();
            }
        }
        Err(e) => writeln!(out, "lint: err {e}").unwrap(),
    }
}

fn check_snapshot(rel: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    if std::env::var_os("FFH_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with FFH_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "frontend output diverged from the pinned pre-arena snapshot \
         ({rel}); if the change is intentional, regenerate with \
         FFH_REGEN_FIXTURES=1"
    );
}

#[test]
fn corner_cases_and_b01_match_pinned_oracle() {
    let mut out = String::new();
    for (i, src) in CORNER_CASES.iter().enumerate() {
        render_case(&mut out, &format!("corner_{i:02}"), src);
    }
    render_case(&mut out, "b01_net", B01_NET);
    check_snapshot("tests/fixtures/frontend_oracle.txt", &out);
}
