//! Differential tests: the arena-allocating parser against the boxed
//! allocation strategy ([`verilog::BoxedExprAlloc`]).
//!
//! Both paths run the same grammar; only the expression allocator differs.
//! `BoxedExprAlloc::finish` flattens its boxed nodes into the same
//! post-order arena layout, so plain `==` (and `Debug` byte comparison)
//! pins the default path to allocation-strategy independence: identical
//! module lists on success, identical error messages on failure, and
//! identical lint diagnostics downstream.

use proptest::prelude::*;
use verilog::{Lexer, Linter, Parser, TokenKind};

const B01_NET: &str = include_str!("fixtures/b01_net.v");

/// Both allocation strategies over one source: equal modules or equal
/// errors.
fn assert_frontends_agree(src: &str) {
    let arena = Parser::parse_source(src);
    let boxed = Parser::parse_source_boxed(src);
    match (&arena, &boxed) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "module lists diverged for:\n{src}");
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "Debug rendering diverged for:\n{src}"
            );
            let linter = Linter::new();
            assert_eq!(
                linter.lint_modules(a),
                linter.lint_modules(b),
                "lint diagnostics diverged for:\n{src}"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a}"),
                format!("{b}"),
                "error messages diverged for:\n{src}"
            );
        }
        _ => panic!("verdicts diverged for:\n{src}\narena: {arena:?}\nboxed: {boxed:?}"),
    }
}

#[test]
fn b01_netlist_parses_identically() {
    assert_frontends_agree(B01_NET);
}

#[test]
fn handwritten_corner_cases_parse_identically() {
    for src in [
        // Operators needing greedy longest-match dispatch.
        "module m(input signed [7:0] a, output reg [7:0] y);\n\
         always @* begin y = (a <<< 2) >>> 1; y = a ** 2; end\nendmodule",
        "module m(input a, input b, output y);\n\
         assign y = (a !== b) ? a ~^ b : a ^~ b;\nendmodule",
        // Escaped identifiers, strings, attributes, directives.
        "`define X 8\nmodule \\weird$name (input a, output y);\n\
         (* keep = \"true\" *) assign y = a;\nendmodule",
        "module m; initial $display(\"a\\\"b\\n\"); endmodule",
        // Non-ANSI ports, part selects, instances.
        "module m(a, y); input [3:0] a; output [3:0] y;\n\
         assign y[3:1] = a[2:0]; assign y[0] = a[3];\nendmodule",
        "module top(input clk); sub #(.W(4)) u0 (.clk(clk)); endmodule",
        // Errors: each must render the same message.
        "module m(input a output y); endmodule",
        "module m(input a, output y); assign y = ; endmodule",
        "module m; \"unterminated",
        "module m; assign y = 1 @# 2; endmodule",
        "",
        "not verilog at all",
    ] {
        assert_frontends_agree(src);
    }
}

/// The tokens a zero-copy lex resolves back to their source spelling: every
/// identifier symbol and every number/string span must round-trip through
/// the interner / the source text.
#[test]
fn lexed_tokens_round_trip_to_source_text() {
    let src = "module m(input [7:0] a, output reg [7:0] y);\n\
               always @(posedge clk) y <= a + 8'hFF; // trailing\nendmodule";
    let lexed = Lexer::new(src).tokenize().expect("lexes");
    for token in &lexed.tokens {
        match token.kind {
            TokenKind::Ident(sym) => {
                let text = lexed.interner.resolve(sym);
                assert!(!text.is_empty());
                assert!(src.contains(text), "identifier `{text}` not in source");
            }
            TokenKind::Number(span) | TokenKind::StringLit(span) => {
                let text = span.text(src);
                assert!(!text.is_empty());
                assert_eq!(
                    &src[span.start as usize..(span.start + span.len) as usize],
                    text
                );
            }
            _ => {}
        }
    }
}

fn simple_module_strategy() -> impl Strategy<Value = String> {
    let ops = prop_oneof![
        Just("&"),
        Just("|"),
        Just("^"),
        Just("+"),
        Just("-"),
        Just("<<"),
        Just(">>"),
        Just("=="),
        Just("!="),
    ];
    (1u32..=16, ops, any::<bool>(), any::<bool>()).prop_map(|(width, op, invert, clocked)| {
        let inv = if invert { "~" } else { "" };
        let msb = width - 1;
        if clocked {
            format!(
                "module gen(input clk, input [{msb}:0] a, input [{msb}:0] b, \
                 output reg [{msb}:0] y);\n\
                 always @(posedge clk) y <= {inv}(a {op} b);\nendmodule\n"
            )
        } else {
            format!(
                "module gen(input [{msb}:0] a, input [{msb}:0] b, output [{msb}:0] y);\n\
                 assign y = {inv}(a {op} b);\nendmodule\n"
            )
        }
    })
}

fn ascii_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..300)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

proptest! {
    #[test]
    fn generated_modules_agree_between_frontends(src in simple_module_strategy()) {
        assert_frontends_agree(&src);
    }

    #[test]
    fn ascii_soup_agrees_between_frontends(src in ascii_soup()) {
        assert_frontends_agree(&src);
    }

    /// Lex → parse round-trip over seeded corpora: a successful parse of the
    /// arena frontend re-lexes its own source to the identical token stream
    /// (lexing is deterministic and the parsed AST resolves to the same
    /// identifier spellings under either allocation strategy).
    #[test]
    fn lex_parse_round_trip_is_deterministic(src in simple_module_strategy()) {
        let first = Lexer::new(&src).tokenize().expect("lexes");
        let second = Lexer::new(&src).tokenize().expect("lexes");
        prop_assert_eq!(&first.tokens, &second.tokens);
        let via_tokens = verilog::Parser::new(&src, &first).parse_modules().expect("parses");
        let via_source = Parser::parse_source(&src).expect("parses");
        prop_assert_eq!(via_tokens, via_source);
    }
}
