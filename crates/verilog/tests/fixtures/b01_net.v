// ITC'99 benchmark b01 -- FSM that compares serial flows (gate-level).
// Flattened to a generic cell library in the style of the synthesised
// "b01_net.v" netlists shipped with the benchmark suite: a non-ANSI port
// list, a 3-bit state register built from resettable D flip-flops, and a
// cloud of two-input gates computing the next-state and output functions.
module b01 ( clock, reset, line1, line2, outp, overflw );
  input clock, reset, line1, line2;
  output outp, overflw;
  wire [2:0] stato;
  wire ns0, ns1, ns2, nx_outp, nx_overflw;
  wire n26, n27, n28, n29, n30, n31, n32, n33;
  wire n34, n35, n36, n37, n38, n39, n40, n41;

  dff_r r_state_0 ( .d(ns0), .ck(clock), .rst(reset), .q(stato[0]) );
  dff_r r_state_1 ( .d(ns1), .ck(clock), .rst(reset), .q(stato[1]) );
  dff_r r_state_2 ( .d(ns2), .ck(clock), .rst(reset), .q(stato[2]) );
  dff_r r_outp    ( .d(nx_outp), .ck(clock), .rst(reset), .q(outp) );
  dff_r r_overflw ( .d(nx_overflw), .ck(clock), .rst(reset), .q(overflw) );

  xor2  u26 ( .a(line1), .b(line2), .y(n26) );
  and2  u27 ( .a(line1), .b(line2), .y(n27) );
  inv1  u28 ( .a(stato[2]), .y(n28) );
  inv1  u29 ( .a(stato[1]), .y(n29) );
  inv1  u30 ( .a(stato[0]), .y(n30) );
  and2  u31 ( .a(n28), .b(n29), .y(n31) );
  and2  u32 ( .a(n31), .b(n30), .y(n32) );
  and2  u33 ( .a(n31), .b(stato[0]), .y(n33) );
  and2  u34 ( .a(n28), .b(stato[1]), .y(n34) );
  and2  u35 ( .a(n34), .b(n30), .y(n35) );
  xor2  u36 ( .a(n26), .b(stato[0]), .y(n36) );
  and2  u37 ( .a(n27), .b(n32), .y(n37) );
  or2   u38 ( .a(n37), .b(n33), .y(n38) );
  and2  u39 ( .a(n38), .b(n36), .y(ns0) );
  or2   u40 ( .a(n32), .b(n35), .y(n39) );
  and2  u41 ( .a(n39), .b(n26), .y(ns1) );
  and2  u42 ( .a(n33), .b(n27), .y(n40) );
  or2   u43 ( .a(n40), .b(n34), .y(ns2) );
  and2  u44 ( .a(n36), .b(n38), .y(n41) );
  or2   u45 ( .a(n41), .b(n35), .y(nx_outp) );
  and2  u46 ( .a(stato[2]), .b(n27), .y(nx_overflw) );
endmodule
