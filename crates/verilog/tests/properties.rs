//! Property-based tests for the Verilog front-end and interpreter.

use proptest::prelude::*;
use verilog::interp::Value;
use verilog::{extract_modules, strip_comments, Lexer, Parser, SyntaxChecker};

/// A strategy producing random (mostly valid) simple combinational modules.
fn simple_module_strategy() -> impl Strategy<Value = String> {
    let ops = prop_oneof![Just("&"), Just("|"), Just("^"), Just("+"), Just("-"),];
    (1u32..=16, ops, any::<bool>()).prop_map(|(width, op, invert)| {
        let inv = if invert { "~" } else { "" };
        format!(
            "module gen(input [{msb}:0] a, input [{msb}:0] b, output [{msb}:0] y);\n\
             assign y = {inv}(a {op} b);\nendmodule\n",
            msb = width - 1
        )
    })
}

/// Arbitrary printable-ASCII soup (to check nothing panics on garbage).
fn ascii_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..300)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

proptest! {
    #[test]
    fn lexer_never_panics_on_ascii(text in ascii_soup()) {
        // Lexing may fail, but it must fail with an error, not a panic.
        let _ = Lexer::new(&text).tokenize();
    }

    #[test]
    fn parser_never_panics_on_ascii(text in ascii_soup()) {
        let _ = Parser::parse_source(&text);
    }

    #[test]
    fn strip_comments_is_idempotent(text in ascii_soup()) {
        let once = strip_comments(&text);
        let twice = strip_comments(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn generated_simple_modules_parse_and_pass_the_syntax_check(src in simple_module_strategy()) {
        prop_assert!(SyntaxChecker::new().is_valid(&src), "rejected:\n{}", src);
        let modules = Parser::parse_source(&src).unwrap();
        prop_assert_eq!(modules.len(), 1);
        prop_assert_eq!(modules[0].input_names().len(), 2);
        prop_assert_eq!(modules[0].output_names(), vec!["y"]);
    }

    #[test]
    fn module_extraction_finds_each_concatenated_module(count in 1usize..6) {
        let src: String = (0..count)
            .map(|i| format!("// header {i}\nmodule m{i}(input a, output y); assign y = a; endmodule\n"))
            .collect();
        let found = extract_modules(&src);
        prop_assert_eq!(found.len(), count);
        for m in found {
            prop_assert!(m.starts_with("module"));
            prop_assert!(m.ends_with("endmodule"));
        }
    }

    #[test]
    fn value_resize_roundtrip_preserves_low_bits(bits in any::<u64>(), width in 1u32..=64, wider in 0u32..=32) {
        let v = Value::new(bits, width);
        let grown = v.resize((width + wider).min(64));
        prop_assert_eq!(grown.resize(width), v);
    }

    #[test]
    fn value_concat_then_select_recovers_parts(hi_bits in any::<u64>(), lo_bits in any::<u64>(), hi_w in 1u32..=32, lo_w in 1u32..=32) {
        let hi = Value::new(hi_bits, hi_w);
        let lo = Value::new(lo_bits, lo_w);
        let joined = hi.concat(lo);
        prop_assert_eq!(joined.select_range(hi_w + lo_w - 1, lo_w), hi);
        prop_assert_eq!(joined.select_range(lo_w - 1, 0), lo);
    }

    #[test]
    fn value_sign_extension_preserves_signed_interpretation(bits in any::<u64>(), width in 1u32..=32, extra in 0u32..=31) {
        let v = Value::new(bits, width);
        let extended = v.sign_extend(width + extra);
        prop_assert_eq!(v.as_signed(), extended.as_signed());
    }
}
