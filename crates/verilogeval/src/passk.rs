//! The unbiased pass@k estimator (Eq. 1 of the paper).

/// Unbiased pass@k for one problem: the probability that at least one of `k`
/// samples drawn (without replacement) from `n` generations is among the `c`
/// correct ones.
///
/// `pass@k = 1 - C(n-c, k) / C(n, k)`, computed in the numerically stable
/// product form. Follows the convention of the Codex paper that the estimate
/// is clamped to 1 when `n - c < k`.
///
/// # Panics
///
/// Panics if `c > n` or `k == 0` or `k > n`.
///
/// # Example
///
/// ```
/// use verilogeval::pass_at_k;
///
/// assert_eq!(pass_at_k(10, 0, 1), 0.0);
/// assert_eq!(pass_at_k(10, 10, 1), 1.0);
/// assert!((pass_at_k(10, 1, 1) - 0.1).abs() < 1e-12);
/// assert!(pass_at_k(10, 3, 5) > pass_at_k(10, 3, 1));
/// ```
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(c <= n, "correct count {c} cannot exceed sample count {n}");
    assert!(k >= 1, "k must be at least 1");
    assert!(k <= n, "k ({k}) cannot exceed the number of samples ({n})");
    if n == c {
        return 1.0;
    }
    if n - c < k {
        return 1.0;
    }
    // prod_{i=0}^{k-1} (n - c - i) / (n - i)
    let mut fail_all = 1.0f64;
    for i in 0..k {
        fail_all *= (n - c - i) as f64 / (n - i) as f64;
    }
    1.0 - fail_all
}

/// Averages pass@k over a set of problems given `(n, c)` per problem.
///
/// An empty result set yields [`f64::NAN`]: there is no mean over zero
/// problems, and silently reporting `0.0` would make an eval harness that
/// lost its problem set indistinguishable from a model that failed every
/// problem. NaN propagates loudly through downstream arithmetic and
/// formatting instead of masquerading as a 0% score; callers that want a
/// policy for the empty case must choose one explicitly.
///
/// # Panics
///
/// Panics under the same conditions as [`pass_at_k`] for any entry.
///
/// # Example
///
/// ```
/// use verilogeval::mean_pass_at_k;
///
/// assert_eq!(mean_pass_at_k(&[(10, 10), (10, 0)], 1), 0.5);
/// assert!(mean_pass_at_k(&[], 1).is_nan());
/// ```
pub fn mean_pass_at_k(results: &[(usize, usize)], k: usize) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results
        .iter()
        .map(|(n, c)| pass_at_k(*n, *c, k))
        .sum::<f64>()
        / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_cases() {
        assert_eq!(pass_at_k(1, 0, 1), 0.0);
        assert_eq!(pass_at_k(1, 1, 1), 1.0);
        assert_eq!(pass_at_k(20, 20, 10), 1.0);
        assert_eq!(pass_at_k(20, 0, 10), 0.0);
    }

    #[test]
    fn matches_closed_form_for_small_cases() {
        // n=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6
        assert!((pass_at_k(4, 2, 2) - (1.0 - 1.0 / 6.0)).abs() < 1e-12);
        // n=5, c=1, k=3: 1 - C(4,3)/C(5,3) = 1 - 4/10
        assert!((pass_at_k(5, 1, 3) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_k_and_c() {
        for c in 0..=10 {
            for k in 1..10 {
                assert!(pass_at_k(10, c, k + 1) >= pass_at_k(10, c, k) - 1e-12);
            }
        }
        for k in 1..=10 {
            for c in 0..10 {
                assert!(pass_at_k(10, c + 1, k) >= pass_at_k(10, c, k) - 1e-12);
            }
        }
    }

    #[test]
    fn clamps_to_one_when_failures_fewer_than_k() {
        assert_eq!(pass_at_k(10, 8, 5), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn too_many_correct_panics() {
        let _ = pass_at_k(5, 6, 1);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = pass_at_k(5, 2, 0);
    }

    #[test]
    fn mean_is_averaged_over_problems() {
        let results = vec![(10, 10), (10, 0)];
        assert!((mean_pass_at_k(&results, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_eval_set_is_nan_not_a_zero_percent_model() {
        // Regression: an empty result set used to report 0.0, which read as
        // "the model solved nothing" when the truth was "nothing was
        // evaluated".
        assert!(mean_pass_at_k(&[], 1).is_nan());
        assert!(mean_pass_at_k(&[], 7).is_nan());
        // One real result flips it back to a number.
        assert_eq!(mean_pass_at_k(&[(5, 5)], 1), 1.0);
    }
}
