//! A VerilogEval-style functional benchmark (§III-E2 of the paper).
//!
//! The paper evaluates its models on VerilogEval-Human 1.0.0: 156 problems,
//! each a human-written natural-language description plus the module
//! interface, judged by functional simulation and scored with the unbiased
//! pass@k estimator (Eq. 1). This crate reproduces the protocol end to end
//! with a built-in problem suite:
//!
//! * [`Problem`] — description, module header, golden solution and a
//!   test-vector testbench;
//! * [`ProblemSuite::verilog_eval_human`] — a suite spanning the same design
//!   families the original benchmark covers (combinational gates and
//!   datapath blocks, multiplexers, decoders, arithmetic, counters, shift
//!   registers, FSM-ish sequential blocks);
//! * [`Runner`] — prompts a language model exactly the way the paper does
//!   (description, then the module header on the next line; stop at the
//!   first `endmodule`; temperatures 0.2 and 0.8 with best-of reporting);
//! * [`pass_at_k`] — the unbiased estimator.
//!
//! The suite is smaller than the original's 156 problems (documented as a
//! substitution in DESIGN.md) but follows the same structure, so pass@k
//! numbers behave the same way: they rise when the model is trained on more
//! and better Verilog.
//!
//! # Example
//!
//! ```
//! use verilogeval::ProblemSuite;
//!
//! let suite = ProblemSuite::verilog_eval_human();
//! assert!(suite.len() >= 30);
//! // Every golden solution passes its own testbench.
//! let p = suite.problems().first().unwrap();
//! assert!(p.golden_passes().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod passk;
pub mod problem;
pub mod runner;
pub mod suite;

pub use passk::{mean_pass_at_k, pass_at_k};
pub use problem::{CandidateVerdict, PreparedProblem, Problem, ProblemFamily};
pub use runner::{EvalConfig, EvalReport, ProblemResult, Runner};
pub use suite::ProblemSuite;
