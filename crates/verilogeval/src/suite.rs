//! The built-in problem suite.
//!
//! A laptop-scale stand-in for VerilogEval-Human: each problem is a
//! natural-language specification plus a module interface, a golden solution
//! and a vector testbench. The suite spans the same families the original
//! covers — gates, multiplexers, arithmetic, comparisons, encodings and
//! clocked sequential logic — so that pass@k responds to model quality the
//! same way, just over fewer problems.

use serde::{Deserialize, Serialize};
use verilog::{TestVector, Testbench};

use crate::problem::{Problem, ProblemFamily};

/// A collection of benchmark problems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProblemSuite {
    problems: Vec<Problem>,
}

impl ProblemSuite {
    /// Creates a suite from explicit problems.
    pub fn new(problems: Vec<Problem>) -> Self {
        Self { problems }
    }

    /// The problems.
    pub fn problems(&self) -> &[Problem] {
        &self.problems
    }

    /// Number of problems.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// Looks up a problem by id.
    pub fn by_id(&self, id: &str) -> Option<&Problem> {
        self.problems.iter().find(|p| p.id == id)
    }

    /// A reduced suite containing only the first `n` problems (useful for
    /// fast benchmarks).
    pub fn truncated(&self, n: usize) -> ProblemSuite {
        ProblemSuite {
            problems: self.problems.iter().take(n).cloned().collect(),
        }
    }

    /// The full built-in suite (the VerilogEval-Human stand-in).
    pub fn verilog_eval_human() -> Self {
        let mut problems = Vec::new();
        problems.extend(gate_problems());
        problems.extend(mux_problems());
        problems.extend(arithmetic_problems());
        problems.extend(comparison_problems());
        problems.extend(encoding_problems());
        problems.extend(sequential_problems());
        Self { problems }
    }
}

// ----- helpers -----

/// A named signal assignment, e.g. `("a", 1)`.
type Pins<'a> = &'a [(&'a str, u64)];

fn iv(pairs: Pins<'_>) -> Vec<(String, u64)> {
    pairs.iter().map(|(n, v)| ((*n).to_string(), *v)).collect()
}

fn comb_vectors(cases: &[(Pins<'_>, Pins<'_>)]) -> Testbench {
    Testbench::combinational(
        cases
            .iter()
            .map(|(inputs, outputs)| TestVector::combinational(iv(inputs), iv(outputs)))
            .collect(),
    )
}

fn clocked_vectors(cases: &[(Pins<'_>, u32, Pins<'_>)]) -> Testbench {
    Testbench::clocked(
        "clk",
        cases
            .iter()
            .map(|(inputs, cycles, outputs)| TestVector::clocked(iv(inputs), *cycles, iv(outputs)))
            .collect(),
    )
}

fn problem(
    id: &str,
    family: ProblemFamily,
    description: &str,
    header: &str,
    body: &str,
    testbench: Testbench,
) -> Problem {
    Problem {
        id: id.to_string(),
        family,
        description: description.to_string(),
        module_header: header.to_string(),
        golden_solution: format!("{header}\n{body}\nendmodule\n"),
        testbench,
    }
}

// ----- combinational gates -----

fn gate_problems() -> Vec<Problem> {
    let two_input = |id: &str, desc: &str, op: &str, f: fn(u64, u64) -> u64| {
        #[allow(clippy::type_complexity)]
        let cases: Vec<(Vec<(&str, u64)>, Vec<(&str, u64)>)> = (0..4)
            .map(|i| {
                let a = i & 1;
                let b = (i >> 1) & 1;
                (vec![("a", a), ("b", b)], vec![("y", f(a, b) & 1)])
            })
            .collect();
        let case_refs: Vec<(Pins<'_>, Pins<'_>)> = cases
            .iter()
            .map(|(i, o)| (i.as_slice(), o.as_slice()))
            .collect();
        problem(
            id,
            ProblemFamily::Gate,
            desc,
            "module top_module(input a, input b, output y);",
            &format!("assign y = {op};"),
            comb_vectors(&case_refs),
        )
    };
    let mut out = vec![
        two_input("and2", "Implement a 2-input AND gate.", "a & b", |a, b| {
            a & b
        }),
        two_input("or2", "Implement a 2-input OR gate.", "a | b", |a, b| a | b),
        two_input("xor2", "Implement a 2-input XOR gate.", "a ^ b", |a, b| {
            a ^ b
        }),
        two_input(
            "nand2",
            "Implement a 2-input NAND gate.",
            "~(a & b)",
            |a, b| !(a & b),
        ),
        two_input(
            "nor2",
            "Implement a 2-input NOR gate.",
            "~(a | b)",
            |a, b| !(a | b),
        ),
        two_input(
            "xnor2",
            "Implement a 2-input XNOR gate.",
            "~(a ^ b)",
            |a, b| !(a ^ b),
        ),
    ];
    out.push(problem(
        "not1",
        ProblemFamily::Gate,
        "Implement an inverter: the output is the logical complement of the input.",
        "module top_module(input a, output y);",
        "assign y = ~a;",
        comb_vectors(&[(&[("a", 0)], &[("y", 1)]), (&[("a", 1)], &[("y", 0)])]),
    ));
    out.push(problem(
        "buffer1",
        ProblemFamily::Gate,
        "Implement a buffer: the output follows the input.",
        "module top_module(input a, output y);",
        "assign y = a;",
        comb_vectors(&[(&[("a", 0)], &[("y", 0)]), (&[("a", 1)], &[("y", 1)])]),
    ));
    out.push(problem(
        "and4",
        ProblemFamily::Gate,
        "Implement a 4-input AND gate over inputs a, b, c and d.",
        "module top_module(input a, input b, input c, input d, output y);",
        "assign y = a & b & c & d;",
        comb_vectors(&[
            (&[("a", 1), ("b", 1), ("c", 1), ("d", 1)], &[("y", 1)]),
            (&[("a", 1), ("b", 1), ("c", 0), ("d", 1)], &[("y", 0)]),
            (&[("a", 0), ("b", 0), ("c", 0), ("d", 0)], &[("y", 0)]),
        ]),
    ));
    out.push(problem(
        "majority3",
        ProblemFamily::Gate,
        "Output 1 when at least two of the three inputs a, b and c are 1.",
        "module top_module(input a, input b, input c, output y);",
        "assign y = (a & b) | (a & c) | (b & c);",
        comb_vectors(&[
            (&[("a", 0), ("b", 0), ("c", 0)], &[("y", 0)]),
            (&[("a", 1), ("b", 0), ("c", 0)], &[("y", 0)]),
            (&[("a", 1), ("b", 1), ("c", 0)], &[("y", 1)]),
            (&[("a", 1), ("b", 1), ("c", 1)], &[("y", 1)]),
            (&[("a", 0), ("b", 1), ("c", 1)], &[("y", 1)]),
        ]),
    ));
    out
}

// ----- multiplexers -----

fn mux_problems() -> Vec<Problem> {
    vec![
        problem(
            "mux2",
            ProblemFamily::Mux,
            "Implement a 2-to-1 multiplexer: output a when sel is 0, b when sel is 1.",
            "module top_module(input a, input b, input sel, output y);",
            "assign y = sel ? b : a;",
            comb_vectors(&[
                (&[("a", 1), ("b", 0), ("sel", 0)], &[("y", 1)]),
                (&[("a", 1), ("b", 0), ("sel", 1)], &[("y", 0)]),
                (&[("a", 0), ("b", 1), ("sel", 1)], &[("y", 1)]),
                (&[("a", 0), ("b", 1), ("sel", 0)], &[("y", 0)]),
            ]),
        ),
        problem(
            "mux2_bus8",
            ProblemFamily::Mux,
            "Implement an 8-bit wide 2-to-1 multiplexer: output a when sel is 0, b when sel is 1.",
            "module top_module(input [7:0] a, input [7:0] b, input sel, output [7:0] y);",
            "assign y = sel ? b : a;",
            comb_vectors(&[
                (&[("a", 0x55), ("b", 0xAA), ("sel", 0)], &[("y", 0x55)]),
                (&[("a", 0x55), ("b", 0xAA), ("sel", 1)], &[("y", 0xAA)]),
                (&[("a", 0xFF), ("b", 0x00), ("sel", 1)], &[("y", 0x00)]),
            ]),
        ),
        problem(
            "mux4_bit",
            ProblemFamily::Mux,
            "Implement a 4-to-1 multiplexer over the bits of d: output d[sel].",
            "module top_module(input [3:0] d, input [1:0] sel, output y);",
            "assign y = d[sel];",
            comb_vectors(&[
                (&[("d", 0b1010), ("sel", 0)], &[("y", 0)]),
                (&[("d", 0b1010), ("sel", 1)], &[("y", 1)]),
                (&[("d", 0b1010), ("sel", 2)], &[("y", 0)]),
                (&[("d", 0b1010), ("sel", 3)], &[("y", 1)]),
            ]),
        ),
    ]
}

// ----- arithmetic -----

fn arithmetic_problems() -> Vec<Problem> {
    vec![
        problem(
            "half_adder",
            ProblemFamily::Arithmetic,
            "Implement a half adder: s is the sum of a and b, c is the carry.",
            "module top_module(input a, input b, output s, output c);",
            "assign s = a ^ b;\nassign c = a & b;",
            comb_vectors(&[
                (&[("a", 0), ("b", 0)], &[("s", 0), ("c", 0)]),
                (&[("a", 1), ("b", 0)], &[("s", 1), ("c", 0)]),
                (&[("a", 1), ("b", 1)], &[("s", 0), ("c", 1)]),
            ]),
        ),
        problem(
            "full_adder",
            ProblemFamily::Arithmetic,
            "Implement a full adder with inputs a, b and cin, producing sum s and carry cout.",
            "module top_module(input a, input b, input cin, output s, output cout);",
            "assign s = a ^ b ^ cin;\nassign cout = (a & b) | (a & cin) | (b & cin);",
            comb_vectors(&[
                (&[("a", 0), ("b", 0), ("cin", 0)], &[("s", 0), ("cout", 0)]),
                (&[("a", 1), ("b", 1), ("cin", 0)], &[("s", 0), ("cout", 1)]),
                (&[("a", 1), ("b", 1), ("cin", 1)], &[("s", 1), ("cout", 1)]),
                (&[("a", 0), ("b", 1), ("cin", 1)], &[("s", 0), ("cout", 1)]),
            ]),
        ),
        problem(
            "adder4_carry",
            ProblemFamily::Arithmetic,
            "Add the two 4-bit inputs a and b, producing a 4-bit sum and a carry output.",
            "module top_module(input [3:0] a, input [3:0] b, output [3:0] sum, output carry);",
            "assign {carry, sum} = {1'b0, a} + {1'b0, b};",
            comb_vectors(&[
                (&[("a", 3), ("b", 4)], &[("sum", 7), ("carry", 0)]),
                (&[("a", 9), ("b", 8)], &[("sum", 1), ("carry", 1)]),
                (&[("a", 15), ("b", 15)], &[("sum", 14), ("carry", 1)]),
            ]),
        ),
        problem(
            "adder8",
            ProblemFamily::Arithmetic,
            "Add the two 8-bit inputs a and b, producing a 9-bit sum so that no carry is lost.",
            "module top_module(input [7:0] a, input [7:0] b, output [8:0] sum);",
            "assign sum = {1'b0, a} + {1'b0, b};",
            comb_vectors(&[
                (&[("a", 100), ("b", 55)], &[("sum", 155)]),
                (&[("a", 200), ("b", 100)], &[("sum", 300)]),
                (&[("a", 255), ("b", 255)], &[("sum", 510)]),
            ]),
        ),
        problem(
            "subtractor4",
            ProblemFamily::Arithmetic,
            "Subtract the 4-bit input b from the 4-bit input a, wrapping modulo 16.",
            "module top_module(input [3:0] a, input [3:0] b, output [3:0] diff);",
            "assign diff = a - b;",
            comb_vectors(&[
                (&[("a", 9), ("b", 4)], &[("diff", 5)]),
                (&[("a", 4), ("b", 9)], &[("diff", 11)]),
                (&[("a", 0), ("b", 1)], &[("diff", 15)]),
            ]),
        ),
        problem(
            "incrementer4",
            ProblemFamily::Arithmetic,
            "Output the 4-bit input a plus one, wrapping modulo 16.",
            "module top_module(input [3:0] a, output [3:0] y);",
            "assign y = a + 4'd1;",
            comb_vectors(&[
                (&[("a", 0)], &[("y", 1)]),
                (&[("a", 7)], &[("y", 8)]),
                (&[("a", 15)], &[("y", 0)]),
            ]),
        ),
        problem(
            "multiplier4",
            ProblemFamily::Arithmetic,
            "Multiply the two 4-bit inputs a and b, producing the full 8-bit product.",
            "module top_module(input [3:0] a, input [3:0] b, output [7:0] p);",
            "assign p = {4'b0000, a} * {4'b0000, b};",
            comb_vectors(&[
                (&[("a", 3), ("b", 5)], &[("p", 15)]),
                (&[("a", 15), ("b", 15)], &[("p", 225)]),
                (&[("a", 0), ("b", 9)], &[("p", 0)]),
            ]),
        ),
    ]
}

// ----- comparisons -----

fn comparison_problems() -> Vec<Problem> {
    vec![
        problem(
            "comparator4",
            ProblemFamily::Comparison,
            "Compare the 4-bit inputs a and b, asserting lt, eq or gt.",
            "module top_module(input [3:0] a, input [3:0] b, output lt, output eq, output gt);",
            "assign lt = (a < b);\nassign eq = (a == b);\nassign gt = (a > b);",
            comb_vectors(&[
                (&[("a", 3), ("b", 9)], &[("lt", 1), ("eq", 0), ("gt", 0)]),
                (&[("a", 9), ("b", 9)], &[("lt", 0), ("eq", 1), ("gt", 0)]),
                (&[("a", 12), ("b", 2)], &[("lt", 0), ("eq", 0), ("gt", 1)]),
            ]),
        ),
        problem(
            "is_zero",
            ProblemFamily::Comparison,
            "Output 1 when the 4-bit input a is zero.",
            "module top_module(input [3:0] a, output y);",
            "assign y = (a == 4'd0);",
            comb_vectors(&[
                (&[("a", 0)], &[("y", 1)]),
                (&[("a", 1)], &[("y", 0)]),
                (&[("a", 15)], &[("y", 0)]),
            ]),
        ),
        problem(
            "min4",
            ProblemFamily::Comparison,
            "Output the smaller of the two 4-bit inputs a and b.",
            "module top_module(input [3:0] a, input [3:0] b, output [3:0] y);",
            "assign y = (a < b) ? a : b;",
            comb_vectors(&[
                (&[("a", 3), ("b", 9)], &[("y", 3)]),
                (&[("a", 9), ("b", 3)], &[("y", 3)]),
                (&[("a", 7), ("b", 7)], &[("y", 7)]),
            ]),
        ),
    ]
}

// ----- encodings -----

fn encoding_problems() -> Vec<Problem> {
    vec![
        problem(
            "parity8",
            ProblemFamily::Encoding,
            "Compute the odd parity (XOR reduction) of the 8-bit input data.",
            "module top_module(input [7:0] data, output parity);",
            "assign parity = ^data;",
            comb_vectors(&[
                (&[("data", 0)], &[("parity", 0)]),
                (&[("data", 0b1000_0001)], &[("parity", 0)]),
                (&[("data", 0b1000_0000)], &[("parity", 1)]),
                (&[("data", 0b0110_1011)], &[("parity", 1)]),
            ]),
        ),
        problem(
            "gray4",
            ProblemFamily::Encoding,
            "Convert the 4-bit binary input bin into Gray code.",
            "module top_module(input [3:0] bin, output [3:0] gray);",
            "assign gray = bin ^ (bin >> 1);",
            comb_vectors(&[
                (&[("bin", 0)], &[("gray", 0)]),
                (&[("bin", 1)], &[("gray", 1)]),
                (&[("bin", 2)], &[("gray", 3)]),
                (&[("bin", 7)], &[("gray", 4)]),
                (&[("bin", 15)], &[("gray", 8)]),
            ]),
        ),
        problem(
            "decoder2to4",
            ProblemFamily::Encoding,
            "Implement a 2-to-4 one-hot decoder with an enable input; all outputs are 0 when en is 0.",
            "module top_module(input [1:0] sel, input en, output reg [3:0] y);",
            "always @* begin\nif (!en) y = 4'b0000;\nelse case (sel)\n2'd0: y = 4'b0001;\n2'd1: y = 4'b0010;\n2'd2: y = 4'b0100;\ndefault: y = 4'b1000;\nendcase\nend",
            comb_vectors(&[
                (&[("sel", 0), ("en", 1)], &[("y", 0b0001)]),
                (&[("sel", 2), ("en", 1)], &[("y", 0b0100)]),
                (&[("sel", 3), ("en", 1)], &[("y", 0b1000)]),
                (&[("sel", 3), ("en", 0)], &[("y", 0)]),
            ]),
        ),
        problem(
            "popcount8",
            ProblemFamily::Encoding,
            "Count the number of 1 bits in the 8-bit input a.",
            "module top_module(input [7:0] a, output reg [3:0] count);",
            "integer i;\nalways @* begin\ncount = 0;\nfor (i = 0; i < 8; i = i + 1) count = count + a[i];\nend",
            comb_vectors(&[
                (&[("a", 0)], &[("count", 0)]),
                (&[("a", 0b1111_1111)], &[("count", 8)]),
                (&[("a", 0b1010_0101)], &[("count", 4)]),
            ]),
        ),
        problem(
            "sign_extend4to8",
            ProblemFamily::Encoding,
            "Sign-extend the 4-bit input a to 8 bits.",
            "module top_module(input [3:0] a, output [7:0] y);",
            "assign y = {{4{a[3]}}, a};",
            comb_vectors(&[
                (&[("a", 0b0101)], &[("y", 0b0000_0101)]),
                (&[("a", 0b1010)], &[("y", 0b1111_1010)]),
            ]),
        ),
        problem(
            "reverse4",
            ProblemFamily::Encoding,
            "Reverse the bit order of the 4-bit input a.",
            "module top_module(input [3:0] a, output [3:0] y);",
            "assign y = {a[0], a[1], a[2], a[3]};",
            comb_vectors(&[
                (&[("a", 0b0001)], &[("y", 0b1000)]),
                (&[("a", 0b1100)], &[("y", 0b0011)]),
                (&[("a", 0b1111)], &[("y", 0b1111)]),
            ]),
        ),
        problem(
            "shift_left",
            ProblemFamily::Encoding,
            "Shift the 8-bit input a left by the 3-bit amount n, filling with zeros.",
            "module top_module(input [7:0] a, input [2:0] n, output [7:0] y);",
            "assign y = a << n;",
            comb_vectors(&[
                (&[("a", 0b0000_0001), ("n", 0)], &[("y", 0b0000_0001)]),
                (&[("a", 0b0000_0001), ("n", 3)], &[("y", 0b0000_1000)]),
                (&[("a", 0b1000_0001), ("n", 1)], &[("y", 0b0000_0010)]),
            ]),
        ),
    ]
}

// ----- sequential -----

fn sequential_problems() -> Vec<Problem> {
    vec![
        problem(
            "dff",
            ProblemFamily::Sequential,
            "Implement a D flip-flop: q takes the value of d at every rising clock edge.",
            "module top_module(input clk, input d, output reg q);",
            "always @(posedge clk) q <= d;",
            clocked_vectors(&[
                (&[("d", 1)], 1, &[("q", 1)]),
                (&[("d", 0)], 1, &[("q", 0)]),
                (&[("d", 1)], 2, &[("q", 1)]),
            ]),
        ),
        problem(
            "dff_rst",
            ProblemFamily::Sequential,
            "Implement a D flip-flop with synchronous reset: when rst is 1 at the clock edge, q becomes 0, otherwise q takes d.",
            "module top_module(input clk, input rst, input d, output reg q);",
            "always @(posedge clk) begin\nif (rst) q <= 1'b0;\nelse q <= d;\nend",
            clocked_vectors(&[
                (&[("rst", 0), ("d", 1)], 1, &[("q", 1)]),
                (&[("rst", 1), ("d", 1)], 1, &[("q", 0)]),
                (&[("rst", 0), ("d", 1)], 1, &[("q", 1)]),
            ]),
        ),
        problem(
            "counter8",
            ProblemFamily::Sequential,
            "Implement an 8-bit counter with synchronous reset and enable: it resets to 0 when rst is 1 and increments by 1 each clock cycle when en is 1.",
            "module top_module(input clk, input rst, input en, output reg [7:0] count);",
            "always @(posedge clk) begin\nif (rst) count <= 8'd0;\nelse if (en) count <= count + 8'd1;\nend",
            clocked_vectors(&[
                (&[("rst", 1), ("en", 0)], 1, &[("count", 0)]),
                (&[("rst", 0), ("en", 1)], 3, &[("count", 3)]),
                (&[("en", 0)], 2, &[("count", 3)]),
                (&[("en", 1)], 2, &[("count", 5)]),
            ]),
        ),
        problem(
            "updown_counter4",
            ProblemFamily::Sequential,
            "Implement a 4-bit up/down counter with synchronous reset: it counts up when up is 1 and down when up is 0.",
            "module top_module(input clk, input rst, input up, output reg [3:0] count);",
            "always @(posedge clk) begin\nif (rst) count <= 4'd0;\nelse if (up) count <= count + 4'd1;\nelse count <= count - 4'd1;\nend",
            clocked_vectors(&[
                (&[("rst", 1), ("up", 1)], 1, &[("count", 0)]),
                (&[("rst", 0), ("up", 1)], 5, &[("count", 5)]),
                (&[("up", 0)], 2, &[("count", 3)]),
            ]),
        ),
        problem(
            "shift_reg8",
            ProblemFamily::Sequential,
            "Implement an 8-bit serial-in shift register with synchronous reset: each clock cycle the register shifts left by one and din enters the least-significant bit.",
            "module top_module(input clk, input rst, input din, output reg [7:0] q);",
            "always @(posedge clk) begin\nif (rst) q <= 8'd0;\nelse q <= {q[6:0], din};\nend",
            clocked_vectors(&[
                (&[("rst", 1), ("din", 0)], 1, &[("q", 0)]),
                (&[("rst", 0), ("din", 1)], 1, &[("q", 0b0000_0001)]),
                (&[("din", 0)], 1, &[("q", 0b0000_0010)]),
                (&[("din", 1)], 2, &[("q", 0b0000_1011)]),
            ]),
        ),
        problem(
            "toggle_ff",
            ProblemFamily::Sequential,
            "Implement a toggle flip-flop with synchronous reset: q inverts on every clock edge where t is 1.",
            "module top_module(input clk, input rst, input t, output reg q);",
            "always @(posedge clk) begin\nif (rst) q <= 1'b0;\nelse if (t) q <= ~q;\nend",
            clocked_vectors(&[
                (&[("rst", 1), ("t", 0)], 1, &[("q", 0)]),
                (&[("rst", 0), ("t", 1)], 1, &[("q", 1)]),
                (&[("t", 1)], 1, &[("q", 0)]),
                (&[("t", 0)], 3, &[("q", 0)]),
                (&[("t", 1)], 1, &[("q", 1)]),
            ]),
        ),
        problem(
            "accumulator8",
            ProblemFamily::Sequential,
            "Implement an 8-bit accumulator with synchronous reset: each clock cycle the input d is added to the running sum.",
            "module top_module(input clk, input rst, input [7:0] d, output reg [7:0] sum);",
            "always @(posedge clk) begin\nif (rst) sum <= 8'd0;\nelse sum <= sum + d;\nend",
            clocked_vectors(&[
                (&[("rst", 1), ("d", 0)], 1, &[("sum", 0)]),
                (&[("rst", 0), ("d", 10)], 1, &[("sum", 10)]),
                (&[("d", 5)], 2, &[("sum", 20)]),
            ]),
        ),
        problem(
            "edge_detect_rise",
            ProblemFamily::Sequential,
            "Detect a rising edge of sig: rise is 1 when sig is 1 but was 0 at the previous clock edge.",
            "module top_module(input clk, input sig, output rise);",
            "reg sig_d;\nalways @(posedge clk) sig_d <= sig;\nassign rise = sig & ~sig_d;",
            clocked_vectors(&[
                (&[("sig", 0)], 1, &[("rise", 0)]),
                (&[("sig", 1)], 0, &[("rise", 1)]),
                (&[("sig", 1)], 1, &[("rise", 0)]),
                (&[("sig", 0)], 1, &[("rise", 0)]),
            ]),
        ),
        problem(
            "parity_tracker",
            ProblemFamily::Fsm,
            "Track the running parity of a bit stream: starting from 0 after reset, the output p flips at every clock edge where the input bit is 1.",
            "module top_module(input clk, input rst, input bit_in, output reg p);",
            "always @(posedge clk) begin\nif (rst) p <= 1'b0;\nelse if (bit_in) p <= ~p;\nend",
            clocked_vectors(&[
                (&[("rst", 1), ("bit_in", 0)], 1, &[("p", 0)]),
                (&[("rst", 0), ("bit_in", 1)], 1, &[("p", 1)]),
                (&[("bit_in", 1)], 1, &[("p", 0)]),
                (&[("bit_in", 0)], 2, &[("p", 0)]),
                (&[("bit_in", 1)], 1, &[("p", 1)]),
            ]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_broad_coverage() {
        let suite = ProblemSuite::verilog_eval_human();
        assert!(suite.len() >= 30, "only {} problems", suite.len());
        let families: std::collections::HashSet<_> =
            suite.problems().iter().map(|p| p.family).collect();
        assert!(families.len() >= 6, "families: {families:?}");
    }

    #[test]
    fn every_golden_solution_passes_its_testbench() {
        let suite = ProblemSuite::verilog_eval_human();
        for p in suite.problems() {
            match p.golden_passes() {
                Ok(true) => {}
                Ok(false) => panic!("golden solution for `{}` fails its testbench", p.id),
                Err(e) => panic!("golden solution for `{}` cannot be simulated: {e}", p.id),
            }
        }
    }

    #[test]
    fn problem_ids_are_unique() {
        let suite = ProblemSuite::verilog_eval_human();
        let ids: std::collections::HashSet<_> =
            suite.problems().iter().map(|p| p.id.clone()).collect();
        assert_eq!(ids.len(), suite.len());
    }

    #[test]
    fn every_problem_has_testbench_vectors_and_description() {
        let suite = ProblemSuite::verilog_eval_human();
        for p in suite.problems() {
            assert!(!p.testbench.is_empty(), "{} has no vectors", p.id);
            assert!(!p.description.is_empty());
            assert!(p.module_header.starts_with("module top_module("));
        }
    }

    #[test]
    fn lookup_and_truncation() {
        let suite = ProblemSuite::verilog_eval_human();
        assert!(suite.by_id("and2").is_some());
        assert!(suite.by_id("does_not_exist").is_none());
        let small = suite.truncated(5);
        assert_eq!(small.len(), 5);
        assert!(!small.is_empty());
    }

    #[test]
    fn wrong_solutions_fail_some_problem() {
        let suite = ProblemSuite::verilog_eval_human();
        let p = suite.by_id("counter8").unwrap();
        // A counter that ignores the enable.
        let wrong = "always @(posedge clk) begin\nif (rst) count <= 0;\nelse count <= count + 1;\nend\nendmodule";
        assert!(!p.check_completion(wrong));
    }
}
