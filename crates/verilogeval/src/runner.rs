//! Evaluation driver: prompt a model, simulate its completions, report
//! pass@k.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use hwlm::parallel::{derive_seed, ExecutionMode};
use hwlm::{LanguageModel, SamplerConfig};

use crate::passk::{mean_pass_at_k, pass_at_k};
use crate::problem::Problem;
use crate::suite::ProblemSuite;

/// Configuration of an evaluation run, defaulting to the paper's protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Number of completions sampled per problem (`n` in the estimator).
    pub samples_per_problem: usize,
    /// The `k` values reported (paper: 1, 5 and 10).
    pub ks: Vec<usize>,
    /// Temperatures evaluated; the best-performing temperature is reported,
    /// following the paper's "the best result was chosen" protocol.
    pub temperatures: Vec<f64>,
    /// Maximum number of new tokens per completion (paper: 2 048; the
    /// built-in problems need far fewer).
    pub max_new_tokens: usize,
    /// Whether to run the semantic lint gate over every candidate before
    /// simulation. When on, each [`ProblemResult`] records how many samples
    /// were lint-clean and the report carries
    /// [`EvalReport::pass_at_k_lint_percent`] — pass@k counting only
    /// candidates that are both functionally correct *and* lint-clean.
    /// Functional pass@k is unaffected either way.
    pub lint_gate: bool,
    /// Base RNG seed for sampling. Every (problem, temperature) pair draws
    /// from its own stream seeded with
    /// `derive_seed(seed, fnv1a(problem.id), temperature_index)`, so one
    /// problem's samples never depend on which problems ran before it — or
    /// on which thread ran it.
    pub seed: u64,
    /// Whether problems are evaluated on the scoped-thread pool or one at a
    /// time. Output is byte-identical either way.
    pub execution: ExecutionMode,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            samples_per_problem: 10,
            ks: vec![1, 5, 10],
            temperatures: vec![0.2, 0.8],
            max_new_tokens: 200,
            lint_gate: true,
            seed: 0xE7A1,
            execution: ExecutionMode::default(),
        }
    }
}

/// Stable FNV-1a fingerprint of a problem id — the seed-derivation lane.
///
/// Keyed on the problem's *identity* rather than its position so that
/// adding, removing or reordering suite entries leaves every other
/// problem's sample stream untouched.
fn problem_lane(problem: &Problem) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in problem.id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-problem outcome at one temperature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemResult {
    /// Problem id.
    pub id: String,
    /// Number of samples drawn.
    pub samples: usize,
    /// Number of functionally correct samples.
    pub correct: usize,
    /// Number of samples the semantic lint gate judged clean (0 when the
    /// gate is disabled).
    pub lint_clean: usize,
    /// Number of samples both functionally correct and lint-clean (0 when
    /// the gate is disabled).
    pub correct_lint_clean: usize,
}

/// The outcome of evaluating one model on a suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Model name.
    pub model: String,
    /// Temperature whose results are reported (the best one).
    pub best_temperature: f64,
    /// Per-problem results at the best temperature.
    pub per_problem: Vec<ProblemResult>,
    /// `(k, mean pass@k * 100)` rows at the best temperature.
    pub pass_at_k_percent: Vec<(usize, f64)>,
    /// `(k, mean pass@k * 100)` rows counting only candidates that are both
    /// functionally correct and lint-clean. Empty when the lint gate is
    /// disabled.
    pub pass_at_k_lint_percent: Vec<(usize, f64)>,
}

impl EvalReport {
    /// Mean pass@k (as a percentage) for a given `k`, if it was evaluated.
    pub fn pass_percent(&self, k: usize) -> Option<f64> {
        self.pass_at_k_percent
            .iter()
            .find(|(kk, _)| *kk == k)
            .map(|(_, v)| *v)
    }

    /// Mean lint-gated pass@k (as a percentage) for a given `k`, if the
    /// lint gate ran.
    pub fn lint_pass_percent(&self, k: usize) -> Option<f64> {
        self.pass_at_k_lint_percent
            .iter()
            .find(|(kk, _)| *kk == k)
            .map(|(_, v)| *v)
    }
}

/// Runs the VerilogEval protocol for language models.
///
/// # Example
///
/// ```
/// use hwlm::{NgramModel, TrainConfig};
/// use verilogeval::{EvalConfig, ProblemSuite, Runner};
///
/// let corpus = vec!["module top_module(input a, input b, output y);\nassign y = a & b;\nendmodule".to_string()];
/// let model = NgramModel::train(&corpus, &TrainConfig::default());
/// let suite = ProblemSuite::verilog_eval_human().truncated(3);
/// let config = EvalConfig { samples_per_problem: 2, ks: vec![1, 2], ..Default::default() };
/// let report = Runner::new(suite, config).evaluate(&model);
/// assert_eq!(report.per_problem.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    suite: ProblemSuite,
    config: EvalConfig,
}

impl Runner {
    /// Creates a runner over a suite with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if any requested `k` exceeds `samples_per_problem`, or if no
    /// temperature or `k` is configured.
    pub fn new(suite: ProblemSuite, config: EvalConfig) -> Self {
        assert!(!config.ks.is_empty(), "at least one k must be configured");
        assert!(
            !config.temperatures.is_empty(),
            "at least one temperature must be configured"
        );
        assert!(
            config.ks.iter().all(|k| *k <= config.samples_per_problem),
            "every k must be <= samples_per_problem"
        );
        Self { suite, config }
    }

    /// The problem suite.
    pub fn suite(&self) -> &ProblemSuite {
        &self.suite
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Draws `n` completions for one problem and counts the functionally
    /// correct ones. `seed` is the problem's own derived stream seed, so the
    /// result depends only on `(model, problem, temperature, seed)`.
    fn solve_problem<M: LanguageModel>(
        &self,
        model: &M,
        problem: &Problem,
        temperature: f64,
        seed: u64,
    ) -> ProblemResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sampler = SamplerConfig::with_temperature(temperature);
        let prompt = problem.prompt();
        // Parse-once contract: the golden solution is parsed a single time
        // here and shared across all k samples, and each sampled candidate
        // is lexed and parsed once for both verdicts.
        let prepared = problem.prepare();
        let mut correct = 0;
        let mut lint_clean = 0;
        let mut correct_lint_clean = 0;
        for _ in 0..self.config.samples_per_problem {
            let completion =
                model.generate_text(&prompt, self.config.max_new_tokens, &sampler, &mut rng);
            let verdict = prepared.judge_completion(&completion, self.config.lint_gate);
            if verdict.functional {
                correct += 1;
            }
            if verdict.lint_clean {
                lint_clean += 1;
                if verdict.functional {
                    correct_lint_clean += 1;
                }
            }
        }
        ProblemResult {
            id: problem.id.clone(),
            samples: self.config.samples_per_problem,
            correct,
            lint_clean,
            correct_lint_clean,
        }
    }

    /// Evaluates `model` on the whole suite, returning the report of the
    /// best-performing temperature (ranked by the largest configured k).
    ///
    /// Every (temperature, problem) pair is an independent job with its own
    /// derived RNG stream; [`EvalConfig::execution`] chooses whether the
    /// jobs run serially or fan out over the scoped-thread pool with
    /// order-stable collection. Both modes produce byte-identical reports.
    pub fn evaluate<M: LanguageModel + Sync>(&self, model: &M) -> EvalReport {
        let rank_k = *self.config.ks.iter().max().expect("ks checked non-empty");
        let problems = self.suite.problems();
        // One job per (temperature, problem) pair, temperature-major.
        let jobs: Vec<(usize, f64, usize)> = self
            .config
            .temperatures
            .iter()
            .enumerate()
            .flat_map(|(t_index, &temperature)| {
                (0..problems.len()).map(move |p_index| (t_index, temperature, p_index))
            })
            .collect();
        let solve = |&(t_index, temperature, p_index): &(usize, f64, usize)| {
            let problem = &problems[p_index];
            let seed = derive_seed(self.config.seed, problem_lane(problem), t_index as u64);
            self.solve_problem(model, problem, temperature, seed)
        };
        let results: Vec<ProblemResult> = match self.config.execution {
            ExecutionMode::Serial => jobs.iter().map(solve).collect(),
            ExecutionMode::Parallel => jobs.par_iter().map(solve).collect(),
        };
        let mut best: Option<EvalReport> = None;
        for (t_index, &temperature) in self.config.temperatures.iter().enumerate() {
            let per_problem: Vec<ProblemResult> =
                results[t_index * problems.len()..(t_index + 1) * problems.len()].to_vec();
            let nc: Vec<(usize, usize)> =
                per_problem.iter().map(|r| (r.samples, r.correct)).collect();
            let pass_at_k_percent: Vec<(usize, f64)> = self
                .config
                .ks
                .iter()
                .map(|&k| (k, 100.0 * mean_pass_at_k(&nc, k)))
                .collect();
            let pass_at_k_lint_percent: Vec<(usize, f64)> = if self.config.lint_gate {
                let nc_lint: Vec<(usize, usize)> = per_problem
                    .iter()
                    .map(|r| (r.samples, r.correct_lint_clean))
                    .collect();
                self.config
                    .ks
                    .iter()
                    .map(|&k| (k, 100.0 * mean_pass_at_k(&nc_lint, k)))
                    .collect()
            } else {
                Vec::new()
            };
            let report = EvalReport {
                model: model.name().to_string(),
                best_temperature: temperature,
                per_problem,
                pass_at_k_percent,
                pass_at_k_lint_percent,
            };
            let better = match &best {
                None => true,
                Some(current) => {
                    report.pass_percent(rank_k).unwrap_or(0.0)
                        > current.pass_percent(rank_k).unwrap_or(0.0)
                }
            };
            if better {
                best = Some(report);
            }
        }
        best.expect("at least one temperature evaluated")
    }

    /// Evaluates a single problem/model pair at one temperature — exposed for
    /// fine-grained benchmarking.
    ///
    /// Uses the same seed derivation as [`Runner::evaluate`], so when
    /// `temperature` is one of the configured points the result equals the
    /// corresponding row of the full run.
    pub fn evaluate_problem<M: LanguageModel>(
        &self,
        model: &M,
        problem_id: &str,
        temperature: f64,
    ) -> Option<ProblemResult> {
        let problem = self.suite.by_id(problem_id)?;
        let t_index = self
            .config
            .temperatures
            .iter()
            .position(|t| *t == temperature)
            .unwrap_or(0);
        let seed = derive_seed(self.config.seed, problem_lane(problem), t_index as u64);
        Some(self.solve_problem(model, problem, temperature, seed))
    }
}

/// Re-export of the estimator for convenience alongside the runner.
pub use crate::passk::pass_at_k as estimator;

#[allow(dead_code)]
fn _assert_estimator_reachable() {
    let _ = pass_at_k(1, 1, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwlm::{NgramModel, TrainConfig};

    /// A model trained directly on the golden solutions: it should ace the
    /// benchmark, which pins down the whole evaluation path.
    fn oracle_model(suite: &ProblemSuite) -> NgramModel {
        let corpus: Vec<String> = suite
            .problems()
            .iter()
            .map(|p| {
                format!("{}{}\n", p.prompt(), {
                    // golden body without the header line
                    let body: Vec<&str> = p.golden_solution.lines().skip(1).collect();
                    body.join("\n")
                })
            })
            .collect();
        NgramModel::train_named(
            "oracle",
            &corpus,
            &TrainConfig {
                order: 16,
                ..Default::default()
            },
        )
    }

    fn weak_model() -> NgramModel {
        let corpus = vec![
            "int main(void) { return 42; }".to_string(),
            "print('hello world')".to_string(),
        ];
        NgramModel::train_named("weak", &corpus, &TrainConfig::default())
    }

    #[test]
    fn oracle_model_scores_near_perfect_on_distinctive_problems() {
        // Problems whose module headers are mutually distinct, so an n-gram
        // oracle can tell them apart from the prompt alone. (Problems that
        // share an identical interface — e.g. the six two-input gates — are
        // genuinely ambiguous for a short-context model; that ambiguity is
        // what keeps absolute pass rates modest, like the paper's.)
        let full = ProblemSuite::verilog_eval_human();
        let ids = [
            "mux2_bus8",
            "adder4_carry",
            "counter8",
            "shift_reg8",
            "parity8",
            "gray4",
            "decoder2to4",
            "popcount8",
        ];
        let suite = ProblemSuite::new(
            ids.iter()
                .map(|id| full.by_id(id).expect("known problem").clone())
                .collect(),
        );
        let model = oracle_model(&suite);
        let config = EvalConfig {
            samples_per_problem: 3,
            ks: vec![1, 3],
            temperatures: vec![0.2],
            max_new_tokens: 300,
            lint_gate: true,
            seed: 1,
            execution: ExecutionMode::Parallel,
        };
        let report = Runner::new(suite, config).evaluate(&model);
        let p1 = report.pass_percent(1).unwrap();
        assert!(p1 > 80.0, "oracle pass@1 was only {p1}");
    }

    #[test]
    fn weak_model_scores_near_zero() {
        let suite = ProblemSuite::verilog_eval_human().truncated(6);
        let model = weak_model();
        let config = EvalConfig {
            samples_per_problem: 2,
            ks: vec![1, 2],
            temperatures: vec![0.8],
            max_new_tokens: 80,
            lint_gate: true,
            seed: 2,
            execution: ExecutionMode::Parallel,
        };
        let report = Runner::new(suite, config).evaluate(&model);
        assert!(report.pass_percent(1).unwrap() < 20.0);
        assert_eq!(report.per_problem.len(), 6);
    }

    #[test]
    fn report_contains_every_configured_k() {
        let suite = ProblemSuite::verilog_eval_human().truncated(2);
        let config = EvalConfig {
            samples_per_problem: 4,
            ks: vec![1, 2, 4],
            temperatures: vec![0.2, 0.8],
            max_new_tokens: 60,
            lint_gate: true,
            seed: 3,
            execution: ExecutionMode::Parallel,
        };
        let report = Runner::new(suite.clone(), config).evaluate(&weak_model());
        assert_eq!(report.pass_at_k_percent.len(), 3);
        assert!(report.pass_percent(4).is_some());
        assert!(report.pass_percent(9).is_none());
        assert!(suite.by_id("and2").is_some());
    }

    #[test]
    fn evaluate_problem_returns_none_for_unknown_id() {
        let suite = ProblemSuite::verilog_eval_human().truncated(2);
        let runner = Runner::new(
            suite,
            EvalConfig {
                samples_per_problem: 1,
                ks: vec![1],
                temperatures: vec![0.2],
                max_new_tokens: 20,
                lint_gate: true,
                seed: 4,
                execution: ExecutionMode::Parallel,
            },
        );
        assert!(runner
            .evaluate_problem(&weak_model(), "nonexistent", 0.2)
            .is_none());
        assert!(runner
            .evaluate_problem(&weak_model(), "and2", 0.2)
            .is_some());
    }

    #[test]
    fn lint_gate_reports_gated_pass_rates() {
        let suite = ProblemSuite::verilog_eval_human().truncated(4);
        let config = EvalConfig {
            samples_per_problem: 3,
            ks: vec![1, 3],
            temperatures: vec![0.2],
            max_new_tokens: 120,
            lint_gate: true,
            seed: 7,
            execution: ExecutionMode::Parallel,
        };
        let report = Runner::new(suite, config).evaluate(&oracle_model(
            &ProblemSuite::verilog_eval_human().truncated(4),
        ));
        // The gated rows exist for every configured k and can only be
        // tighter than the functional rows.
        assert_eq!(report.pass_at_k_lint_percent.len(), 2);
        for &(k, gated) in &report.pass_at_k_lint_percent {
            let functional = report.pass_percent(k).unwrap();
            assert!(
                gated <= functional + 1e-9,
                "lint-gated pass@{k} ({gated}) exceeds functional ({functional})"
            );
        }
        for r in &report.per_problem {
            assert!(r.correct_lint_clean <= r.correct);
            assert!(r.correct_lint_clean <= r.lint_clean);
            assert!(r.lint_clean <= r.samples);
        }
    }

    #[test]
    fn disabling_the_lint_gate_skips_lint_entirely() {
        let suite = ProblemSuite::verilog_eval_human().truncated(2);
        let config = EvalConfig {
            samples_per_problem: 2,
            ks: vec![1],
            temperatures: vec![0.2],
            max_new_tokens: 60,
            lint_gate: false,
            seed: 8,
            execution: ExecutionMode::Parallel,
        };
        let report = Runner::new(suite, config).evaluate(&weak_model());
        assert!(report.pass_at_k_lint_percent.is_empty());
        assert!(report.lint_pass_percent(1).is_none());
        assert!(report
            .per_problem
            .iter()
            .all(|r| r.lint_clean == 0 && r.correct_lint_clean == 0));
    }

    #[test]
    fn parallel_evaluation_is_byte_identical_to_serial() {
        let suite = ProblemSuite::verilog_eval_human().truncated(6);
        let model = oracle_model(&suite);
        let serial_config = EvalConfig {
            samples_per_problem: 3,
            ks: vec![1, 3],
            temperatures: vec![0.2, 0.8],
            max_new_tokens: 120,
            lint_gate: true,
            seed: 11,
            execution: ExecutionMode::Serial,
        };
        let parallel_config = EvalConfig {
            execution: ExecutionMode::Parallel,
            ..serial_config.clone()
        };
        let serial = Runner::new(suite.clone(), serial_config).evaluate(&model);
        let parallel = Runner::new(suite, parallel_config).evaluate(&model);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn per_problem_results_are_invariant_under_suite_reordering() {
        // Regression: the runner used to advance one sequential RNG across
        // the whole suite, so adding, removing or reordering a problem
        // silently changed every later problem's samples. Seeds now derive
        // from the problem's identity, making each row order-independent.
        let suite = ProblemSuite::verilog_eval_human().truncated(6);
        let model = oracle_model(&suite);
        let config = EvalConfig {
            samples_per_problem: 3,
            ks: vec![1, 3],
            temperatures: vec![0.2],
            max_new_tokens: 120,
            lint_gate: true,
            seed: 21,
            execution: ExecutionMode::Serial,
        };
        let forward = Runner::new(suite.clone(), config.clone()).evaluate(&model);
        let reversed_suite = ProblemSuite::new(suite.problems().iter().rev().cloned().collect());
        let reversed = Runner::new(reversed_suite, config.clone()).evaluate(&model);
        for result in &forward.per_problem {
            let same = reversed
                .per_problem
                .iter()
                .find(|r| r.id == result.id)
                .expect("problem present in reversed suite");
            assert_eq!(same, result);
        }
        // Dropping problems leaves the remaining rows untouched too.
        let truncated_suite = ProblemSuite::new(suite.problems()[2..].to_vec());
        let truncated = Runner::new(truncated_suite, config).evaluate(&model);
        for result in &truncated.per_problem {
            let same = forward
                .per_problem
                .iter()
                .find(|r| r.id == result.id)
                .expect("problem present in full suite");
            assert_eq!(same, result);
        }
    }

    #[test]
    fn single_problem_evaluation_matches_the_full_run_row() {
        let suite = ProblemSuite::verilog_eval_human().truncated(4);
        let model = oracle_model(&suite);
        let config = EvalConfig {
            samples_per_problem: 2,
            ks: vec![1, 2],
            temperatures: vec![0.2, 0.8],
            max_new_tokens: 120,
            lint_gate: true,
            seed: 33,
            execution: ExecutionMode::Serial,
        };
        let runner = Runner::new(suite.clone(), config);
        let report = runner.evaluate(&model);
        let temperature = report.best_temperature;
        for row in &report.per_problem {
            let single = runner
                .evaluate_problem(&model, &row.id, temperature)
                .expect("known problem");
            assert_eq!(&single, row);
        }
    }

    #[test]
    #[should_panic(expected = "every k must be <= samples_per_problem")]
    fn invalid_k_configuration_panics() {
        let _ = Runner::new(
            ProblemSuite::verilog_eval_human().truncated(1),
            EvalConfig {
                samples_per_problem: 2,
                ks: vec![5],
                temperatures: vec![0.2],
                max_new_tokens: 10,
                lint_gate: true,
                seed: 0,
                execution: ExecutionMode::Parallel,
            },
        );
    }
}
