//! A single benchmark problem.

use serde::{Deserialize, Serialize};
use verilog::interp::EvalError;
use verilog::{ParsedFile, Testbench};

/// The design family of a problem, used for reporting per-family accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ProblemFamily {
    Gate,
    Mux,
    Arithmetic,
    Comparison,
    Encoding,
    Sequential,
    Fsm,
}

/// One VerilogEval-style problem: a natural-language specification, the
/// module interface the model must complete, a golden solution and a
/// functional testbench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Stable identifier (e.g. `"and2"`).
    pub id: String,
    /// Design family.
    pub family: ProblemFamily,
    /// Human-written description of the desired behaviour.
    pub description: String,
    /// The module header the model must continue (up to and including the
    /// port list and `;`).
    pub module_header: String,
    /// A reference implementation that passes the testbench.
    pub golden_solution: String,
    /// Functional testbench applied to candidate solutions.
    pub testbench: Testbench,
}

impl Problem {
    /// The prompt presented to a model: the description as a comment block,
    /// then the module header on the next line (the paper's prompt format).
    pub fn prompt(&self) -> String {
        let mut out = String::new();
        for line in self.description.lines() {
            out.push_str("// ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&self.module_header);
        out.push('\n');
        out
    }

    /// Assembles a full candidate module from a model completion (the text
    /// generated after the prompt, expected to end with `endmodule`).
    pub fn assemble(&self, completion: &str) -> String {
        format!("{}\n{}\n", self.module_header, completion)
    }

    /// Parses the golden solution once, producing a [`PreparedProblem`]
    /// whose judging methods never re-lex or re-parse it. The evaluation
    /// runner prepares each problem a single time and reuses the result
    /// across every sampled completion.
    pub fn prepare(&self) -> PreparedProblem<'_> {
        let golden = match ParsedFile::parse(self.golden_solution.as_str()) {
            Ok(parsed) if parsed.first_module().is_none() => Err(EvalError::Elaboration(
                "golden solution has no module".into(),
            )),
            Ok(parsed) => Ok(parsed),
            Err(e) => Err(EvalError::Elaboration(format!(
                "golden solution parse error: {e}"
            ))),
        };
        PreparedProblem {
            problem: self,
            golden,
        }
    }

    /// Judges one candidate source with a single lex + parse: functional
    /// correctness against the testbench and (when `lint_gate` is on)
    /// lint-cleanliness from the same parse.
    pub fn judge_source(&self, source: &str, lint_gate: bool) -> CandidateVerdict {
        let Ok(parsed) = ParsedFile::parse(source) else {
            return CandidateVerdict {
                functional: false,
                lint_clean: false,
            };
        };
        let lint_clean = lint_gate && Self::lint_clean_parsed(&parsed);
        let functional = parsed
            .first_module()
            .is_some_and(|module| matches!(self.testbench.passes(module), Ok(true)));
        CandidateVerdict {
            functional,
            lint_clean,
        }
    }

    /// Functionally checks a full module source against the testbench.
    ///
    /// Returns `false` for any parse, elaboration or simulation failure —
    /// a candidate that cannot be simulated is simply wrong, matching how
    /// the real benchmark treats un-compilable completions.
    pub fn check_source(&self, source: &str) -> bool {
        self.judge_source(source, false).functional
    }

    /// Checks a model completion (text after the prompt).
    pub fn check_completion(&self, completion: &str) -> bool {
        self.check_source(&self.assemble(completion))
    }

    /// Whether a full module source is *lint-clean*: it parses and the
    /// semantic lint engine ([`verilog::lint`]) reports no error-severity
    /// findings. Warnings (style, latch inference, width truncation) do not
    /// disqualify a candidate.
    ///
    /// This is the pre-simulation gate: it judges the candidate's static
    /// plausibility independently of the testbench, so pass@k can be
    /// reported with and without lint-clean filtering.
    pub fn lint_clean(&self, source: &str) -> bool {
        match ParsedFile::parse(source) {
            Ok(parsed) => Self::lint_clean_parsed(&parsed),
            Err(_) => false,
        }
    }

    fn lint_clean_parsed(parsed: &ParsedFile) -> bool {
        verilog::Linter::new()
            .lint_parsed(parsed)
            .iter()
            .all(|d| d.severity < verilog::Severity::Error)
    }

    /// Lint-checks a model completion (text after the prompt).
    pub fn lint_clean_completion(&self, completion: &str) -> bool {
        self.lint_clean(&self.assemble(completion))
    }

    /// Verifies that the golden solution passes its own testbench.
    ///
    /// # Errors
    ///
    /// Returns the underlying simulation error if the golden solution cannot
    /// be parsed or simulated (a bug in the suite, caught by tests).
    pub fn golden_passes(&self) -> Result<bool, EvalError> {
        self.prepare().golden_passes()
    }
}

/// Verdict on one candidate source, computed from a single lex + parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateVerdict {
    /// Whether the candidate passes the functional testbench.
    pub functional: bool,
    /// Whether the candidate is lint-clean (always `false` when judging
    /// with the lint gate disabled — the lint engine is not consulted).
    pub lint_clean: bool,
}

/// A [`Problem`] whose golden solution has been parsed exactly once.
///
/// Produced by [`Problem::prepare`]; the runner keeps one per problem and
/// judges all `k` sampled completions against it, so the golden text is
/// never re-lexed and each candidate is lexed and parsed a single time for
/// both the functional and the lint verdict.
#[derive(Debug, Clone)]
pub struct PreparedProblem<'a> {
    problem: &'a Problem,
    golden: Result<ParsedFile, EvalError>,
}

impl PreparedProblem<'_> {
    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        self.problem
    }

    /// Judges one candidate source with a single lex + parse — see
    /// [`Problem::judge_source`].
    pub fn judge_source(&self, source: &str, lint_gate: bool) -> CandidateVerdict {
        self.problem.judge_source(source, lint_gate)
    }

    /// Judges a model completion (text after the prompt).
    pub fn judge_completion(&self, completion: &str, lint_gate: bool) -> CandidateVerdict {
        self.judge_source(&self.problem.assemble(completion), lint_gate)
    }

    /// Verifies that the (already parsed) golden solution passes its own
    /// testbench.
    ///
    /// # Errors
    ///
    /// Returns the underlying simulation error if the golden solution could
    /// not be parsed or cannot be simulated (a bug in the suite, caught by
    /// tests).
    pub fn golden_passes(&self) -> Result<bool, EvalError> {
        let golden = self.golden.as_ref().map_err(Clone::clone)?;
        let module = golden
            .first_module()
            .expect("prepare() rejects module-free goldens");
        self.problem.testbench.passes(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verilog::TestVector;

    fn and_problem() -> Problem {
        Problem {
            id: "and2".into(),
            family: ProblemFamily::Gate,
            description: "Implement a 2-input AND gate.".into(),
            module_header: "module top_module(input a, input b, output y);".into(),
            golden_solution:
                "module top_module(input a, input b, output y);\nassign y = a & b;\nendmodule\n"
                    .into(),
            testbench: Testbench::combinational(vec![
                TestVector::combinational(
                    vec![("a".into(), 0), ("b".into(), 1)],
                    vec![("y".into(), 0)],
                ),
                TestVector::combinational(
                    vec![("a".into(), 1), ("b".into(), 1)],
                    vec![("y".into(), 1)],
                ),
            ]),
        }
    }

    #[test]
    fn prompt_contains_description_and_header() {
        let p = and_problem();
        let prompt = p.prompt();
        assert!(prompt.starts_with("// Implement a 2-input AND gate."));
        assert!(prompt.trim_end().ends_with("output y);"));
    }

    #[test]
    fn golden_solution_passes() {
        assert!(and_problem().golden_passes().unwrap());
    }

    #[test]
    fn correct_completion_is_accepted() {
        let p = and_problem();
        assert!(p.check_completion("assign y = a & b;\nendmodule"));
        assert!(p.check_completion("assign y = b & a; endmodule"));
    }

    #[test]
    fn wrong_or_broken_completions_are_rejected() {
        let p = and_problem();
        assert!(!p.check_completion("assign y = a | b;\nendmodule"));
        assert!(!p.check_completion("assign y = a & b;")); // missing endmodule
        assert!(!p.check_completion("garbage <unk> tokens"));
        assert!(!p.check_completion(""));
    }

    #[test]
    fn lint_gate_separates_clean_from_semantically_broken_candidates() {
        let p = and_problem();
        // The golden solution is lint-clean.
        assert!(p.lint_clean(&p.golden_solution));
        assert!(p.lint_clean_completion("assign y = a & b;\nendmodule"));
        // A doubly-driven output is an error-severity finding.
        assert!(!p.lint_clean_completion("assign y = a & b;\nassign y = a;\nendmodule"));
        // Unparsable candidates are never clean.
        assert!(!p.lint_clean_completion("garbage <unk> tokens"));
        // Warning-severity findings do not disqualify: an unused
        // intermediate wire is tolerated.
        assert!(p.lint_clean_completion("wire t;\nassign t = a;\nassign y = t & b;\nendmodule"));
    }

    #[test]
    fn judge_source_matches_the_separate_check_and_lint_paths() {
        let p = and_problem();
        let prepared = p.prepare();
        let candidates = [
            p.golden_solution.clone(),
            p.assemble("assign y = a & b;\nendmodule"),
            p.assemble("assign y = a | b;\nendmodule"), // wrong but clean
            p.assemble("assign y = a & b;\nassign y = a;\nendmodule"), // lint error
            p.assemble("assign y = a & b;"),            // parse error
            p.assemble("garbage <unk> tokens"),         // parse error
            String::new(),                              // parses, no modules
            "// comment only\n".to_string(),            // parses, no modules
        ];
        for source in &candidates {
            let verdict = prepared.judge_source(source, true);
            assert_eq!(verdict.functional, p.check_source(source), "for:\n{source}");
            assert_eq!(verdict.lint_clean, p.lint_clean(source), "for:\n{source}");
            // With the gate off the lint engine is never consulted.
            let ungated = prepared.judge_source(source, false);
            assert_eq!(ungated.functional, verdict.functional);
            assert!(!ungated.lint_clean);
        }
        // Pinned edge case: a module-free source parses, so it is
        // lint-clean (no findings) but can never be functional.
        let empty = prepared.judge_source("// comment only\n", true);
        assert!(!empty.functional);
        assert!(empty.lint_clean);
        // And an unparsable source is neither.
        let broken = prepared.judge_source("module broken(", true);
        assert!(!broken.functional);
        assert!(!broken.lint_clean);
    }

    #[test]
    fn prepared_golden_passes_matches_the_unprepared_path() {
        let p = and_problem();
        assert_eq!(p.golden_passes(), p.prepare().golden_passes());
        // Broken goldens keep their exact error strings.
        let mut broken = p.clone();
        broken.golden_solution = "module broken(".into();
        let err = broken.golden_passes().unwrap_err();
        assert!(format!("{err:?}").contains("golden solution parse error"));
        let mut empty = p.clone();
        empty.golden_solution = "// nothing\n".into();
        let err = empty.golden_passes().unwrap_err();
        assert!(format!("{err:?}").contains("golden solution has no module"));
    }

    #[test]
    fn assemble_prepends_the_header() {
        let p = and_problem();
        let full = p.assemble("assign y = a & b;\nendmodule");
        assert!(full.starts_with("module top_module"));
        assert!(full.contains("endmodule"));
    }
}
