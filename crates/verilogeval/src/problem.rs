//! A single benchmark problem.

use serde::{Deserialize, Serialize};
use verilog::interp::EvalError;
use verilog::{Parser, Testbench};

/// The design family of a problem, used for reporting per-family accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ProblemFamily {
    Gate,
    Mux,
    Arithmetic,
    Comparison,
    Encoding,
    Sequential,
    Fsm,
}

/// One VerilogEval-style problem: a natural-language specification, the
/// module interface the model must complete, a golden solution and a
/// functional testbench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Stable identifier (e.g. `"and2"`).
    pub id: String,
    /// Design family.
    pub family: ProblemFamily,
    /// Human-written description of the desired behaviour.
    pub description: String,
    /// The module header the model must continue (up to and including the
    /// port list and `;`).
    pub module_header: String,
    /// A reference implementation that passes the testbench.
    pub golden_solution: String,
    /// Functional testbench applied to candidate solutions.
    pub testbench: Testbench,
}

impl Problem {
    /// The prompt presented to a model: the description as a comment block,
    /// then the module header on the next line (the paper's prompt format).
    pub fn prompt(&self) -> String {
        let mut out = String::new();
        for line in self.description.lines() {
            out.push_str("// ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&self.module_header);
        out.push('\n');
        out
    }

    /// Assembles a full candidate module from a model completion (the text
    /// generated after the prompt, expected to end with `endmodule`).
    pub fn assemble(&self, completion: &str) -> String {
        format!("{}\n{}\n", self.module_header, completion)
    }

    /// Functionally checks a full module source against the testbench.
    ///
    /// Returns `false` for any parse, elaboration or simulation failure —
    /// a candidate that cannot be simulated is simply wrong, matching how
    /// the real benchmark treats un-compilable completions.
    pub fn check_source(&self, source: &str) -> bool {
        let Ok(modules) = Parser::parse_source(source) else {
            return false;
        };
        let Some(module) = modules.first() else {
            return false;
        };
        matches!(self.testbench.passes(module), Ok(true))
    }

    /// Checks a model completion (text after the prompt).
    pub fn check_completion(&self, completion: &str) -> bool {
        self.check_source(&self.assemble(completion))
    }

    /// Whether a full module source is *lint-clean*: it parses and the
    /// semantic lint engine ([`verilog::lint`]) reports no error-severity
    /// findings. Warnings (style, latch inference, width truncation) do not
    /// disqualify a candidate.
    ///
    /// This is the pre-simulation gate: it judges the candidate's static
    /// plausibility independently of the testbench, so pass@k can be
    /// reported with and without lint-clean filtering.
    pub fn lint_clean(&self, source: &str) -> bool {
        match verilog::Linter::new().lint_source(source) {
            Ok(diagnostics) => diagnostics
                .iter()
                .all(|d| d.severity < verilog::Severity::Error),
            Err(_) => false,
        }
    }

    /// Lint-checks a model completion (text after the prompt).
    pub fn lint_clean_completion(&self, completion: &str) -> bool {
        self.lint_clean(&self.assemble(completion))
    }

    /// Verifies that the golden solution passes its own testbench.
    ///
    /// # Errors
    ///
    /// Returns the underlying simulation error if the golden solution cannot
    /// be parsed or simulated (a bug in the suite, caught by tests).
    pub fn golden_passes(&self) -> Result<bool, EvalError> {
        let modules = Parser::parse_source(&self.golden_solution)
            .map_err(|e| EvalError::Elaboration(format!("golden solution parse error: {e}")))?;
        let module = modules
            .first()
            .ok_or_else(|| EvalError::Elaboration("golden solution has no module".into()))?;
        self.testbench.passes(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verilog::TestVector;

    fn and_problem() -> Problem {
        Problem {
            id: "and2".into(),
            family: ProblemFamily::Gate,
            description: "Implement a 2-input AND gate.".into(),
            module_header: "module top_module(input a, input b, output y);".into(),
            golden_solution:
                "module top_module(input a, input b, output y);\nassign y = a & b;\nendmodule\n"
                    .into(),
            testbench: Testbench::combinational(vec![
                TestVector::combinational(
                    vec![("a".into(), 0), ("b".into(), 1)],
                    vec![("y".into(), 0)],
                ),
                TestVector::combinational(
                    vec![("a".into(), 1), ("b".into(), 1)],
                    vec![("y".into(), 1)],
                ),
            ]),
        }
    }

    #[test]
    fn prompt_contains_description_and_header() {
        let p = and_problem();
        let prompt = p.prompt();
        assert!(prompt.starts_with("// Implement a 2-input AND gate."));
        assert!(prompt.trim_end().ends_with("output y);"));
    }

    #[test]
    fn golden_solution_passes() {
        assert!(and_problem().golden_passes().unwrap());
    }

    #[test]
    fn correct_completion_is_accepted() {
        let p = and_problem();
        assert!(p.check_completion("assign y = a & b;\nendmodule"));
        assert!(p.check_completion("assign y = b & a; endmodule"));
    }

    #[test]
    fn wrong_or_broken_completions_are_rejected() {
        let p = and_problem();
        assert!(!p.check_completion("assign y = a | b;\nendmodule"));
        assert!(!p.check_completion("assign y = a & b;")); // missing endmodule
        assert!(!p.check_completion("garbage <unk> tokens"));
        assert!(!p.check_completion(""));
    }

    #[test]
    fn lint_gate_separates_clean_from_semantically_broken_candidates() {
        let p = and_problem();
        // The golden solution is lint-clean.
        assert!(p.lint_clean(&p.golden_solution));
        assert!(p.lint_clean_completion("assign y = a & b;\nendmodule"));
        // A doubly-driven output is an error-severity finding.
        assert!(!p.lint_clean_completion("assign y = a & b;\nassign y = a;\nendmodule"));
        // Unparsable candidates are never clean.
        assert!(!p.lint_clean_completion("garbage <unk> tokens"));
        // Warning-severity findings do not disqualify: an unused
        // intermediate wire is tolerated.
        assert!(p.lint_clean_completion("wire t;\nassign t = a;\nassign y = t & b;\nendmodule"));
    }

    #[test]
    fn assemble_prepends_the_header() {
        let p = and_problem();
        let full = p.assemble("assign y = a & b;\nendmodule");
        assert!(full.starts_with("module top_module"));
        assert!(full.contains("endmodule"));
    }
}
