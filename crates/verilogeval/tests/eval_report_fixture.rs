//! Pins a deterministic tiny [`verilogeval::EvalReport`] byte-for-byte.
//!
//! The runner's sampling is fully seed-derived and the judge runs the
//! interpreter plus the lint gate over every candidate, so the report is a
//! stable fingerprint of the whole eval path: tokenizer, model, sampler,
//! parser, simulator and linter. Any frontend refactor that changes one
//! functional or lint verdict moves a count here.
//!
//! Regenerate with `FFH_REGEN_FIXTURES=1 cargo test`.

use hwlm::{ExecutionMode, NgramModel, TrainConfig};
use verilogeval::{EvalConfig, ProblemSuite, Runner};

fn check_snapshot(rel: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    if std::env::var_os("FFH_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with FFH_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "eval report diverged from the pinned pre-arena snapshot ({rel}); \
         if the change is intentional, regenerate with FFH_REGEN_FIXTURES=1"
    );
}

/// A model good enough to sometimes pass problems (trained on the golden
/// solutions themselves), so the pinned report has non-trivial counts.
fn model(suite: &ProblemSuite) -> NgramModel {
    let corpus: Vec<String> = suite
        .problems()
        .iter()
        .map(|p| p.golden_solution.clone())
        .collect();
    NgramModel::train_named("fixture-model", &corpus, &TrainConfig::default())
}

#[test]
fn tiny_eval_report_matches_pinned_snapshot() {
    let suite = ProblemSuite::verilog_eval_human().truncated(4);
    let model = model(&suite);
    let config = EvalConfig {
        samples_per_problem: 4,
        ks: vec![1, 4],
        temperatures: vec![0.2, 0.8],
        max_new_tokens: 200,
        lint_gate: true,
        seed: 0xF1C5,
        execution: ExecutionMode::Serial,
    };
    let report = Runner::new(suite, config).evaluate(&model);
    let rendered = format!("{report:#?}\n");
    check_snapshot("tests/fixtures/eval_report_tiny.txt", &rendered);
}
