//! Property-based tests over the order-stable parallel evaluation harness:
//! for *any* base seed and sampling budget, the parallel [`EvalReport`] must
//! be byte-identical to the serial one, and — because every (problem,
//! temperature) pair derives its own RNG stream from the problem's identity
//! rather than its position — per-problem results must be invariant under
//! reordering the suite.

use hwlm::parallel::ExecutionMode;
use hwlm::{NgramModel, TrainConfig};
use proptest::prelude::*;
use verilogeval::{EvalConfig, ProblemSuite, Runner};

/// A small model trained on the golden solutions of the truncated suite, so
/// its samples exercise real token distributions (not just the unseen-token
/// fallback path).
fn model(suite: &ProblemSuite) -> NgramModel {
    let corpus: Vec<String> = suite
        .problems()
        .iter()
        .map(|p| format!("{}{}\n", p.prompt(), p.golden_solution))
        .collect();
    NgramModel::train_named(
        "prop",
        &corpus,
        &TrainConfig {
            order: 8,
            ..Default::default()
        },
    )
}

fn config(seed: u64, samples: usize, execution: ExecutionMode) -> EvalConfig {
    EvalConfig {
        samples_per_problem: samples,
        ks: vec![1, samples.max(1)],
        temperatures: vec![0.2, 0.8],
        max_new_tokens: 60,
        lint_gate: true,
        seed,
        execution,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The tentpole invariant: parallelism is a wall-clock knob, not a
    /// semantics change. Any (seed, sampling budget) must produce the same
    /// report — per-problem counts, best temperature, pass@k rows — in both
    /// execution modes.
    #[test]
    fn parallel_report_is_byte_identical_to_serial(
        seed in any::<u64>(),
        samples in 1usize..4,
        problems in 2usize..7,
    ) {
        let suite = ProblemSuite::verilog_eval_human().truncated(problems);
        let model = model(&suite);
        let serial = Runner::new(suite.clone(), config(seed, samples, ExecutionMode::Serial))
            .evaluate(&model);
        let parallel = Runner::new(suite, config(seed, samples, ExecutionMode::Parallel))
            .evaluate(&model);
        prop_assert_eq!(&parallel, &serial, "reports diverged at seed {}", seed);
    }

    /// The determinism fix this harness was built around: a problem's result
    /// depends only on the base seed and the problem's own identity, so
    /// rotating the suite reorders the report's rows without changing any of
    /// them.
    #[test]
    fn per_problem_results_survive_suite_reordering(
        seed in any::<u64>(),
        samples in 1usize..3,
        rotation in 1usize..5,
    ) {
        let suite = ProblemSuite::verilog_eval_human().truncated(5);
        let model = model(&suite);
        let mut rotated_problems = suite.problems().to_vec();
        let split = rotation % rotated_problems.len();
        rotated_problems.rotate_left(split);
        let rotated = ProblemSuite::new(rotated_problems);

        let base = Runner::new(suite, config(seed, samples, ExecutionMode::Parallel))
            .evaluate(&model);
        let reordered = Runner::new(rotated, config(seed, samples, ExecutionMode::Parallel))
            .evaluate(&model);

        let mut base_rows = base.per_problem.clone();
        let mut reordered_rows = reordered.per_problem.clone();
        base_rows.sort_by(|a, b| a.id.cmp(&b.id));
        reordered_rows.sort_by(|a, b| a.id.cmp(&b.id));
        prop_assert_eq!(base_rows, reordered_rows, "rotation changed a problem's result");
        prop_assert_eq!(base.pass_at_k_percent, reordered.pass_at_k_percent);
    }
}
