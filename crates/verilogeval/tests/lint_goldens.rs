//! Every golden solution in the built-in suite must be lint-clean: the
//! eval-side lint gate should never penalise a correct reference design.

use verilog::Linter;
use verilogeval::ProblemSuite;

#[test]
fn golden_solutions_are_lint_clean() {
    let linter = Linter::new();
    for p in ProblemSuite::verilog_eval_human().problems() {
        let diags = linter
            .lint_source(&p.golden_solution)
            .unwrap_or_else(|e| panic!("golden `{}` does not parse: {e}", p.id));
        assert!(
            diags.is_empty(),
            "golden `{}` has lint findings:\n{}",
            p.id,
            diags
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
