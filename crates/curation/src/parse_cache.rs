//! Parse-once handoff between the syntax and lint stages.
//!
//! The FreeSet policy runs the syntax filter and the semantic lint stage
//! back to back, and both need the parsed AST of every file. Without
//! coordination each stage lexes and parses independently — double work on
//! the two hottest stages of the pipeline. A [`ParseCache`] shared between
//! the stage pair eliminates the second pass: the syntax stage parses each
//! file exactly once (via [`verilog::ParsedFile`]), deposits the survivors
//! here, and the lint stage withdraws them instead of re-parsing.
//!
//! Entries are keyed by a content hash and verified by exact source
//! comparison, so hash collisions and repeated contents are both handled.
//! [`ParseCache::take`] *removes* the entry it returns: memory is bounded
//! by one batch's survivors, not the whole corpus, and a streaming session
//! that pushes many batches drains the cache batch by batch.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use verilog::ParsedFile;

/// A concurrent source-text → [`ParsedFile`] handoff buffer.
///
/// Shared (via `Arc`) between the stage that parses and the stage that
/// consumes. All methods take `&self`; internal locking keeps the cache
/// safe under the pipeline's parallel execution mode.
#[derive(Debug, Default)]
pub struct ParseCache {
    entries: Mutex<HashMap<u64, Vec<Arc<ParsedFile>>>>,
}

impl ParseCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(content: &str) -> u64 {
        let mut hasher = DefaultHasher::new();
        content.hash(&mut hasher);
        hasher.finish()
    }

    /// Deposits a parsed file, keyed by its own source text.
    pub fn insert(&self, parsed: Arc<ParsedFile>) {
        let key = Self::key(parsed.source());
        self.entries
            .lock()
            .expect("parse cache poisoned")
            .entry(key)
            .or_default()
            .push(parsed);
    }

    /// Withdraws the parsed form of `content`, if a stage deposited one.
    ///
    /// The entry is removed from the cache; a second `take` with the same
    /// content returns `None` unless another copy was inserted (duplicate
    /// file contents each get their own entry).
    pub fn take(&self, content: &str) -> Option<Arc<ParsedFile>> {
        let key = Self::key(content);
        let mut entries = self.entries.lock().expect("parse cache poisoned");
        let bucket = entries.get_mut(&key)?;
        let position = bucket.iter().position(|p| p.source() == content)?;
        let parsed = bucket.swap_remove(position);
        if bucket.is_empty() {
            entries.remove(&key);
        }
        Some(parsed)
    }

    /// Number of parsed files currently held.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("parse cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "module m(input a, output y); assign y = a; endmodule";

    #[test]
    fn insert_then_take_round_trips() {
        let cache = ParseCache::new();
        cache.insert(Arc::new(ParsedFile::parse(SRC).unwrap()));
        assert_eq!(cache.len(), 1);
        let parsed = cache.take(SRC).expect("hit");
        assert_eq!(parsed.source(), SRC);
        assert!(cache.is_empty());
        assert!(cache.take(SRC).is_none(), "take removes the entry");
    }

    #[test]
    fn miss_on_different_content() {
        let cache = ParseCache::new();
        cache.insert(Arc::new(ParsedFile::parse(SRC).unwrap()));
        assert!(cache.take("module other; endmodule").is_none());
        assert_eq!(cache.len(), 1, "miss leaves the entry in place");
    }

    #[test]
    fn duplicate_contents_each_get_an_entry() {
        let cache = ParseCache::new();
        cache.insert(Arc::new(ParsedFile::parse(SRC).unwrap()));
        cache.insert(Arc::new(ParsedFile::parse(SRC).unwrap()));
        assert_eq!(cache.len(), 2);
        assert!(cache.take(SRC).is_some());
        assert!(cache.take(SRC).is_some());
        assert!(cache.take(SRC).is_none());
    }
}
