//! Streaming batch intake for the curation stage engine.
//!
//! A [`CurationSession`] accepts the corpus incrementally — e.g. one
//! repository at a time, straight off a concurrent scraper's handoff queue —
//! instead of requiring the whole file bank up front. Batch-invariant stages
//! (see [`CurationStage::batch_invariant`]) are applied to each batch as it
//! arrives, so license/length filtering overlaps the scrape; the first
//! non-invariant stage (de-duplication, in every paper policy) and
//! everything after it run once at [`CurationSession::finish`], over the
//! survivors in arrival order.
//!
//! The session is *exactly* equivalent to the one-shot path: for any split
//! of a corpus into batches,
//! `session.push(batch₁); …; session.push(batchₙ); session.finish()`
//! produces the same [`CuratedDataset`] — files, funnel and rejection
//! provenance — as `pipeline.run(batch₁ ⧺ … ⧺ batchₙ)` (property-tested in
//! `tests/stage_properties.rs`). [`crate::CurationPipeline::run`] is in fact
//! implemented as a single-batch session.

use gh_sim::ExtractedFile;

use crate::funnel::FunnelStats;
use crate::pipeline::{CuratedDataset, CurationPipeline};
use crate::stage::{CurationStage, FileBatch, RejectedFile, StageOutcome};

/// Per-stage tallies accumulated across pushed batches.
#[derive(Default)]
struct StageTally {
    entering: usize,
    surviving: usize,
    rejects: Vec<RejectedFile>,
}

/// An in-progress curation run accepting the corpus batch by batch.
///
/// Created by [`CurationPipeline::session`]; see the module docs for the
/// equivalence guarantee.
///
/// # Example
///
/// ```
/// use curation::{CurationConfig, CurationPipeline};
///
/// let pipeline = CurationPipeline::new(CurationConfig::freeset());
/// let mut session = pipeline.session();
/// session.push(vec![]); // batches arrive as the scrape progresses
/// let dataset = session.finish();
/// assert!(dataset.is_empty());
/// ```
pub struct CurationSession<'p> {
    pipeline: &'p CurationPipeline,
    /// The stages built from the pipeline's configuration (custom stages are
    /// borrowed from the pipeline and run after these).
    configured: Vec<Box<dyn CurationStage>>,
    /// Index (into the configured ⧺ custom stage list) of the first stage
    /// that is *not* batch-invariant; stages before it run per batch.
    split: usize,
    /// One tally per streaming stage.
    tallies: Vec<StageTally>,
    /// Survivors of the streaming prefix, in arrival order.
    buffered: Vec<ExtractedFile>,
    /// Total files pushed (the funnel's initial count).
    pushed: usize,
}

impl<'p> CurationSession<'p> {
    pub(crate) fn new(pipeline: &'p CurationPipeline) -> Self {
        let mut session = Self {
            pipeline,
            configured: pipeline.configured_stages(),
            split: 0,
            tallies: Vec::new(),
            buffered: Vec::new(),
            pushed: 0,
        };
        let total = session.stage_count();
        session.split = (0..total)
            .find(|&i| !session.stage_at(i).batch_invariant())
            .unwrap_or(total);
        session.tallies = (0..session.split).map(|_| StageTally::default()).collect();
        session
    }

    fn stage_at(&self, index: usize) -> &dyn CurationStage {
        if index < self.configured.len() {
            self.configured[index].as_ref()
        } else {
            self.pipeline.custom_stage_list()[index - self.configured.len()].as_ref()
        }
    }

    fn stage_count(&self) -> usize {
        self.configured.len() + self.pipeline.custom_stage_list().len()
    }

    /// Number of leading stages applied incrementally per pushed batch.
    pub fn streaming_stage_count(&self) -> usize {
        self.split
    }

    /// Total files pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Feeds one batch through the streaming stage prefix, buffering its
    /// survivors for the deferred stages.
    pub fn push(&mut self, files: Vec<ExtractedFile>) {
        self.pushed += files.len();
        let mut files = files;
        for index in 0..self.split {
            let stage = self.stage_at(index);
            let mut outcome = stage.apply(FileBatch::new(files, self.pipeline.mode()));
            restamp(stage, &mut outcome);
            let tally = &mut self.tallies[index];
            tally.entering += outcome.total();
            tally.surviving += outcome.kept.len();
            tally.rejects.append(&mut outcome.rejected);
            files = outcome.kept;
        }
        self.buffered.extend(files);
    }

    /// Runs the deferred stages over the buffered survivors and assembles
    /// the dataset: identical, batch split notwithstanding, to a one-shot
    /// [`CurationPipeline::run`] over the concatenated input.
    pub fn finish(mut self) -> CuratedDataset {
        let mut funnel = FunnelStats::new(self.pushed);
        let mut rejects: Vec<RejectedFile> = Vec::new();
        // The streaming prefix: fold the per-batch tallies into the funnel.
        let tallies = std::mem::take(&mut self.tallies);
        for (index, mut tally) in tallies.into_iter().enumerate() {
            funnel.record(self.stage_at(index).name(), tally.surviving);
            debug_assert_eq!(
                funnel.stages().last().map(|s| s.entering),
                Some(tally.entering),
                "streamed tallies must chain like a one-shot funnel"
            );
            rejects.append(&mut tally.rejects);
        }
        // The deferred suffix: ordinary stage-at-a-time execution.
        let mut files = std::mem::take(&mut self.buffered);
        for index in self.split..self.stage_count() {
            let stage = self.stage_at(index);
            let mut outcome = stage.apply(FileBatch::new(files, self.pipeline.mode()));
            restamp(stage, &mut outcome);
            funnel.record(stage.name(), outcome.kept.len());
            rejects.extend(outcome.rejected);
            files = outcome.kept;
        }
        self.pipeline.assemble_dataset(files, funnel, rejects)
    }
}

/// Stamps every rejection with the stage's canonical name so provenance
/// always keys the same way as the funnel, even when a stage's `apply`
/// tagged rejections inconsistently.
fn restamp(stage: &dyn CurationStage, outcome: &mut StageOutcome) {
    for reject in &mut outcome.rejected {
        if reject.stage != stage.name() {
            reject.stage = stage.name().to_string();
        }
    }
}
