//! Streaming batch intake for the curation stage engine.
//!
//! A [`CurationSession`] accepts the corpus incrementally — e.g. one
//! repository at a time, straight off a concurrent scraper's handoff queue —
//! instead of requiring the whole file bank up front. The session runs the
//! leading *streamable* prefix of the stage list on each batch as it
//! arrives: batch-invariant stages (license, length, syntax, copyright)
//! apply statelessly, and stateful streaming stages (de-duplication, which
//! resolves each batch against its persistent kept-index — see
//! [`CurationStage::open_stream`]) carry their state across pushes. Under
//! the paper's FreeSet policy every stage streams, so nothing is buffered
//! and curation — dedup included — fully overlaps the scrape. Only a custom
//! stage without a streaming form (and the stages after it) is deferred to
//! [`CurationSession::finish`], which runs the deferred suffix over the
//! buffered survivors in arrival order.
//!
//! The session is *exactly* equivalent to the one-shot path: for any split
//! of a corpus into batches,
//! `session.push(batch₁); …; session.push(batchₙ); session.finish()`
//! produces the same [`CuratedDataset`] — files, funnel and rejection
//! provenance — as `pipeline.run(batch₁ ⧺ … ⧺ batchₙ)` (property-tested in
//! `tests/stage_properties.rs`). [`crate::CurationPipeline::run`] is in fact
//! implemented as a single-batch session.

use std::io;

use gh_sim::ExtractedFile;

use crate::funnel::FunnelStats;
use crate::pipeline::{CuratedDataset, CurationPipeline};
use crate::stage::{CurationStage, FileBatch, RejectedFile, StageOutcome, StageStreaming};

/// Per-stage tallies accumulated across pushed batches.
#[derive(Default)]
struct StageTally {
    entering: usize,
    surviving: usize,
    rejects: Vec<RejectedFile>,
}

/// Looks up a stage across the configured and custom stage lists.
///
/// A free function (not a method) so `push` can borrow the stage while the
/// per-stage streams are borrowed mutably — the borrows are disjoint fields.
fn stage_at<'a>(
    configured: &'a [Box<dyn CurationStage>],
    custom: &'a [Box<dyn CurationStage>],
    index: usize,
) -> &'a dyn CurationStage {
    if index < configured.len() {
        configured[index].as_ref()
    } else {
        custom[index - configured.len()].as_ref()
    }
}

/// An in-progress curation run accepting the corpus batch by batch.
///
/// Created by [`CurationPipeline::session`]; see the module docs for the
/// equivalence guarantee.
///
/// # Example
///
/// ```
/// use curation::{CurationConfig, CurationPipeline};
///
/// let pipeline = CurationPipeline::new(CurationConfig::freeset());
/// let mut session = pipeline.session();
/// session.push(vec![])?; // batches arrive as the scrape progresses
/// let dataset = session.finish()?;
/// assert!(dataset.is_empty());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct CurationSession<'p> {
    pipeline: &'p CurationPipeline,
    /// The stages built from the pipeline's configuration (custom stages are
    /// borrowed from the pipeline and run after these).
    configured: Vec<Box<dyn CurationStage>>,
    /// Index (into the configured ⧺ custom stage list) of the first stage
    /// with no streaming form; stages before it run per batch.
    split: usize,
    /// One streaming form per stage in the prefix (`Stateless` entries apply
    /// the stage directly; `Stateful` entries carry cross-batch state).
    streams: Vec<StageStreaming>,
    /// One tally per streaming stage.
    tallies: Vec<StageTally>,
    /// Survivors of the streaming prefix, in arrival order.
    buffered: Vec<ExtractedFile>,
    /// Total files pushed (the funnel's initial count).
    pushed: usize,
}

impl<'p> CurationSession<'p> {
    pub(crate) fn new(pipeline: &'p CurationPipeline) -> io::Result<Self> {
        let configured = pipeline.configured_stages();
        let custom = pipeline.custom_stage_list();
        let total = configured.len() + custom.len();
        let mut streams = Vec::new();
        let mut split = total;
        for index in 0..total {
            match stage_at(&configured, custom, index).open_stream()? {
                StageStreaming::Deferred => {
                    split = index;
                    break;
                }
                stream => streams.push(stream),
            }
        }
        Ok(Self {
            pipeline,
            configured,
            split,
            streams,
            tallies: (0..split).map(|_| StageTally::default()).collect(),
            buffered: Vec::new(),
            pushed: 0,
        })
    }

    fn stage_at(&self, index: usize) -> &dyn CurationStage {
        stage_at(&self.configured, self.pipeline.custom_stage_list(), index)
    }

    fn stage_count(&self) -> usize {
        self.configured.len() + self.pipeline.custom_stage_list().len()
    }

    /// Number of leading stages applied incrementally per pushed batch.
    /// Under the FreeSet policy this is *every* stage — de-duplication
    /// streams against its persistent kept-index.
    pub fn streaming_stage_count(&self) -> usize {
        self.split
    }

    /// Total files pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Feeds one batch through the streaming stage prefix, buffering its
    /// survivors for the deferred stages (if any).
    ///
    /// # Errors
    ///
    /// Returns the IO error of a spill-backed streaming stage (see
    /// [`crate::DedupSpillConfig`]); sessions without spill never error.
    /// After an error the session's carried state is suspect — discard it.
    pub fn push(&mut self, files: Vec<ExtractedFile>) -> io::Result<()> {
        self.pushed += files.len();
        let mode = self.pipeline.mode();
        let mut files = files;
        for index in 0..self.split {
            let mut outcome = match &mut self.streams[index] {
                StageStreaming::Stateful(stream) => stream.push(FileBatch::new(files, mode))?,
                StageStreaming::Stateless => {
                    stage_at(&self.configured, self.pipeline.custom_stage_list(), index)
                        .apply(FileBatch::new(files, mode))
                }
                StageStreaming::Deferred => {
                    unreachable!("deferred stages are never part of the streaming prefix")
                }
            };
            let stage = self.stage_at(index);
            restamp(stage, &mut outcome);
            let tally = &mut self.tallies[index];
            tally.entering += outcome.total();
            tally.surviving += outcome.kept.len();
            tally.rejects.append(&mut outcome.rejected);
            files = outcome.kept;
        }
        self.buffered.extend(files);
        Ok(())
    }

    /// Runs the deferred stages over the buffered survivors and assembles
    /// the dataset: identical, batch split notwithstanding, to a one-shot
    /// [`CurationPipeline::run`] over the concatenated input.
    ///
    /// # Errors
    ///
    /// Reserved for deferred spill-backed stages; today's built-in deferred
    /// path is infallible, so this only errors through custom stages.
    pub fn finish(mut self) -> io::Result<CuratedDataset> {
        let mut funnel = FunnelStats::new(self.pushed);
        let mut rejects: Vec<RejectedFile> = Vec::new();
        // The streaming prefix: fold the per-batch tallies into the funnel.
        let tallies = std::mem::take(&mut self.tallies);
        for (index, mut tally) in tallies.into_iter().enumerate() {
            funnel.record_with_categories(
                self.stage_at(index).name(),
                tally.surviving,
                reject_categories(&tally.rejects),
            );
            debug_assert_eq!(
                funnel.stages().last().map(|s| s.entering),
                Some(tally.entering),
                "streamed tallies must chain like a one-shot funnel"
            );
            rejects.append(&mut tally.rejects);
        }
        // The deferred suffix: ordinary stage-at-a-time execution.
        let mut files = std::mem::take(&mut self.buffered);
        for index in self.split..self.stage_count() {
            let stage = self.stage_at(index);
            let mut outcome = stage.apply(FileBatch::new(files, self.pipeline.mode()));
            restamp(stage, &mut outcome);
            funnel.record_with_categories(
                stage.name(),
                outcome.kept.len(),
                reject_categories(&outcome.rejected),
            );
            rejects.extend(outcome.rejected);
            files = outcome.kept;
        }
        Ok(self.pipeline.assemble_dataset(files, funnel, rejects))
    }
}

/// Folds a stage's categorised rejections into sorted `(category, count)`
/// rows for the funnel. Stages that never categorise produce an empty list.
/// Because the rows are derived from the rejection list itself, streamed
/// and one-shot runs — whose rejection lists are identical — get identical
/// category counts.
fn reject_categories(rejects: &[RejectedFile]) -> Vec<(String, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for reject in rejects {
        if let Some(category) = &reject.category {
            *counts.entry(category.clone()).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Stamps every rejection with the stage's canonical name so provenance
/// always keys the same way as the funnel, even when a stage's `apply`
/// tagged rejections inconsistently.
fn restamp(stage: &dyn CurationStage, outcome: &mut StageOutcome) {
    for reject in &mut outcome.rejected {
        if reject.stage != stage.name() {
            reject.stage = stage.name().to_string();
        }
    }
}
