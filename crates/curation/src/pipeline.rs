//! The end-to-end curation pipeline: an executor over a [`CurationStage`]
//! list.
//!
//! [`CurationPipeline::new`] assembles the stage list a [`CurationConfig`]'s
//! toggles describe (the compatibility path every Table I policy uses);
//! [`CurationPipeline::with_stage`] appends arbitrary custom stages, so
//! experiments can curate with policies the paper never shipped. The
//! pipeline runs each stage in order, records a stage-keyed [`FunnelStats`],
//! and retains every rejection with provenance in the produced
//! [`CuratedDataset`].

use std::io;

use gh_sim::ExtractedFile;
use serde::{Deserialize, Serialize};

use crate::copyright::CopyrightDetector;
use crate::dedup::{DedupConfig, DedupSpillConfig};
use crate::funnel::FunnelStats;
use crate::intake::CurationSession;
use crate::license_filter::LicenseFilter;
use crate::lint_stage::{LintRejectPolicy, LintStage};
use crate::parse_cache::ParseCache;
use crate::stage::{CurationStage, ExecutionMode, RejectReason, RejectedFile};
use crate::stages::{CopyrightStage, DedupStage, LengthCapStage, LicenseStage, SyntaxStage};

/// How the curated dataset is meant to be consumed downstream — mirrored from
/// Table I's "Dataset Structure" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetStructure {
    /// Raw files for continual (causal) pre-training — FreeSet and VeriGen.
    ContinualPretraining,
    /// Prompt/response pairs for instruction tuning — RTLCoder, CodeV, ….
    InstructionTuning,
}

/// Configuration of a curation run. Stage toggles exist so that prior works'
/// weaker policies can be reproduced for the comparison experiments; the
/// pipeline turns them into the equivalent [`CurationStage`] list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurationConfig {
    /// Human-readable policy name (e.g. `"FreeSet"`, `"VeriGen"`).
    pub name: String,
    /// Whether to drop files from repositories without an accepted license.
    pub check_repository_license: bool,
    /// Whether to run the per-file copyright keyword filter.
    pub check_file_copyright: bool,
    /// Whether to run MinHash/LSH de-duplication.
    pub deduplicate: bool,
    /// Whether to drop files that fail the syntax check.
    pub check_syntax: bool,
    /// Semantic lint policy: when set, files whose lint findings reach the
    /// policy's severity threshold are dropped (with the offending rule id
    /// recorded as the rejection's category). `None` disables the stage.
    pub lint: Option<LintRejectPolicy>,
    /// Optional maximum file length in characters (CodeV-style truncation of
    /// the corpus; `None` keeps everything).
    pub max_file_chars: Option<usize>,
    /// De-duplication parameters.
    pub dedup: DedupConfig,
    /// Optional spill-to-disk policy bounding the de-duplicator's resident
    /// kept state (`None` keeps everything in memory; the outcome is
    /// byte-identical either way).
    pub dedup_spill: Option<DedupSpillConfig>,
    /// Dataset structure produced by the policy.
    pub structure: DatasetStructure,
    /// Whether the policy augments the corpus with synthetic/LLM-generated
    /// data (recorded for Table I; this pipeline never fabricates files).
    pub augmented: bool,
}

impl CurationConfig {
    /// The paper's FreeSet policy: license check, copyright check,
    /// de-duplication and syntax check all enabled, no length cap.
    pub fn freeset() -> Self {
        Self {
            name: "FreeSet".into(),
            check_repository_license: true,
            check_file_copyright: true,
            deduplicate: true,
            check_syntax: true,
            lint: Some(LintRejectPolicy::default()),
            max_file_chars: None,
            dedup: DedupConfig::default(),
            dedup_spill: None,
            structure: DatasetStructure::ContinualPretraining,
            augmented: false,
        }
    }

    /// A policy that applies no filtering at all (the raw scrape).
    pub fn unfiltered(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            check_repository_license: false,
            check_file_copyright: false,
            deduplicate: false,
            check_syntax: false,
            lint: None,
            max_file_chars: None,
            dedup: DedupConfig::default(),
            dedup_spill: None,
            structure: DatasetStructure::ContinualPretraining,
            augmented: false,
        }
    }
}

/// One file of a curated dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuratedFile {
    /// The extracted file, with provenance.
    pub file: ExtractedFile,
}

impl CuratedFile {
    /// File length in characters.
    pub fn char_len(&self) -> usize {
        self.file.char_len()
    }

    /// The file contents.
    pub fn content(&self) -> &str {
        &self.file.content
    }
}

/// The output of a curation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuratedDataset {
    name: String,
    structure: DatasetStructure,
    augmented: bool,
    files: Vec<CuratedFile>,
    funnel: FunnelStats,
    rejects: Vec<RejectedFile>,
}

impl CuratedDataset {
    /// Policy name that produced the dataset.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared dataset structure.
    pub fn structure(&self) -> DatasetStructure {
        self.structure
    }

    /// Whether the producing policy augments its data.
    pub fn augmented(&self) -> bool {
        self.augmented
    }

    /// The curated files.
    pub fn files(&self) -> &[CuratedFile] {
        &self.files
    }

    /// Number of files (Table I's "Size (Rows)").
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total size in characters (the proxy for Table I's on-disk size).
    pub fn total_chars(&self) -> usize {
        self.files.iter().map(CuratedFile::char_len).sum()
    }

    /// The stage-by-stage funnel.
    pub fn funnel(&self) -> &FunnelStats {
        &self.funnel
    }

    /// Every rejected file with full provenance (stage, reason, detail), in
    /// rejection order.
    pub fn rejects(&self) -> &[RejectedFile] {
        &self.rejects
    }

    /// The rejected files removed for a specific reason.
    pub fn rejects_for(&self, reason: RejectReason) -> impl Iterator<Item = &RejectedFile> {
        self.rejects.iter().filter(move |r| r.reason == reason)
    }

    /// Files the copyright filter rejected — the raw material for the
    /// copyrighted reference set of the infringement benchmark.
    pub fn copyright_rejects(&self) -> Vec<&ExtractedFile> {
        self.rejects_for(RejectReason::Copyright)
            .map(|r| &r.file)
            .collect()
    }

    /// Iterates over file contents (training corpus view).
    pub fn contents(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(|f| f.file.content.as_str())
    }
}

/// Runs a curation policy as a sequence of [`CurationStage`]s.
///
/// # Example
///
/// ```
/// use curation::{CurationConfig, CurationPipeline};
///
/// let pipeline = CurationPipeline::new(CurationConfig::freeset());
/// assert_eq!(pipeline.config().name, "FreeSet");
/// assert_eq!(
///     pipeline.stage_names(),
///     vec!["license filter", "deduplication", "syntax filter", "lint filter", "copyright filter"],
/// );
/// ```
pub struct CurationPipeline {
    config: CurationConfig,
    license_filter: LicenseFilter,
    copyright_detector: CopyrightDetector,
    custom_stages: Vec<Box<dyn CurationStage>>,
    mode: ExecutionMode,
}

impl CurationPipeline {
    /// Creates a pipeline whose stage list mirrors the policy's toggles, in
    /// the paper's order: license filter → (length filter) → de-duplication →
    /// syntax check → (semantic lint) → per-file copyright check.
    pub fn new(config: CurationConfig) -> Self {
        Self {
            config,
            license_filter: LicenseFilter::paper_default(),
            copyright_detector: CopyrightDetector::new(),
            custom_stages: Vec::new(),
            mode: ExecutionMode::default(),
        }
    }

    /// Overrides the license filter (e.g. permissive-only ablations).
    pub fn with_license_filter(mut self, filter: LicenseFilter) -> Self {
        self.license_filter = filter;
        self
    }

    /// Overrides the copyright detector.
    pub fn with_copyright_detector(mut self, detector: CopyrightDetector) -> Self {
        self.copyright_detector = detector;
        self
    }

    /// Appends a custom stage, run after the policy's configured stages (in
    /// registration order). This is how experiments express curation steps
    /// the paper's toggle set cannot.
    pub fn with_stage(mut self, stage: Box<dyn CurationStage>) -> Self {
        self.custom_stages.push(stage);
        self
    }

    /// Sets the execution mode (the default is [`ExecutionMode::Parallel`];
    /// both modes produce identical output).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Convenience for `with_mode(ExecutionMode::Serial)`.
    pub fn serial(self) -> Self {
        self.with_mode(ExecutionMode::Serial)
    }

    /// The configuration in use.
    pub fn config(&self) -> &CurationConfig {
        &self.config
    }

    /// The execution mode in use.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Builds the stage list the configuration's toggles describe (without
    /// the appended custom stages).
    pub(crate) fn configured_stages(&self) -> Vec<Box<dyn CurationStage>> {
        let mut stages: Vec<Box<dyn CurationStage>> = Vec::new();
        if self.config.check_repository_license {
            stages.push(Box::new(LicenseStage::new(self.license_filter.clone())));
        }
        if let Some(cap) = self.config.max_file_chars {
            stages.push(Box::new(LengthCapStage::new(cap)));
        }
        if self.config.deduplicate {
            stages.push(Box::new(DedupStage::with_spill(
                self.config.dedup,
                self.config.dedup_spill.clone(),
            )));
        }
        // When the syntax filter feeds straight into the lint stage, the
        // pair shares a ParseCache: syntax parses each file exactly once
        // and lint reuses that parse instead of re-parsing.
        let parse_cache = (self.config.check_syntax && self.config.lint.is_some())
            .then(|| std::sync::Arc::new(ParseCache::new()));
        if self.config.check_syntax {
            stages.push(Box::new(match &parse_cache {
                Some(cache) => SyntaxStage::with_cache(std::sync::Arc::clone(cache)),
                None => SyntaxStage::new(),
            }));
        }
        if let Some(policy) = &self.config.lint {
            stages.push(Box::new(match parse_cache {
                Some(cache) => LintStage::with_cache(policy.clone(), cache),
                None => LintStage::new(policy.clone()),
            }));
        }
        if self.config.check_file_copyright {
            stages.push(Box::new(CopyrightStage::new(
                self.copyright_detector.clone(),
            )));
        }
        stages
    }

    /// The appended custom stages, in registration order.
    pub(crate) fn custom_stage_list(&self) -> &[Box<dyn CurationStage>] {
        &self.custom_stages
    }

    /// The names of the stages this pipeline will run, in order.
    pub fn stage_names(&self) -> Vec<String> {
        self.configured_stages()
            .iter()
            .map(|s| s.name().to_string())
            .chain(self.custom_stages.iter().map(|s| s.name().to_string()))
            .collect()
    }

    /// Opens a streaming intake session: the corpus can be pushed batch by
    /// batch (e.g. straight off a concurrent scraper's handoff queue) and
    /// the result is identical to a one-shot [`CurationPipeline::run`] over
    /// the concatenated batches. See [`CurationSession`].
    ///
    /// # Panics
    ///
    /// Panics if a spill-backed stage cannot create its spill directory; use
    /// [`CurationPipeline::try_session`] to handle that IO error instead.
    pub fn session(&self) -> CurationSession<'_> {
        self.try_session()
            .expect("curation session opens (spill directory is writable)")
    }

    /// [`CurationPipeline::session`], surfacing spill-directory IO errors
    /// instead of panicking.
    pub fn try_session(&self) -> io::Result<CurationSession<'_>> {
        CurationSession::new(self)
    }

    /// Runs the pipeline over a bank of extracted files — a single-batch
    /// [`CurationSession`], so the streaming and one-shot paths share one
    /// executor.
    ///
    /// # Panics
    ///
    /// Panics if a configured spill policy hits an IO error; use
    /// [`CurationPipeline::try_run`] to handle it instead. Policies without
    /// spill never touch the filesystem.
    pub fn run(&self, files: Vec<ExtractedFile>) -> CuratedDataset {
        self.try_run(files).expect("curation spill IO succeeds")
    }

    /// [`CurationPipeline::run`], surfacing spill IO errors instead of
    /// panicking.
    pub fn try_run(&self, files: Vec<ExtractedFile>) -> io::Result<CuratedDataset> {
        let mut session = self.try_session()?;
        session.push(files)?;
        session.finish()
    }

    /// Assembles the run's output (the session's final step).
    pub(crate) fn assemble_dataset(
        &self,
        files: Vec<ExtractedFile>,
        funnel: FunnelStats,
        rejects: Vec<RejectedFile>,
    ) -> CuratedDataset {
        CuratedDataset {
            name: self.config.name.clone(),
            structure: self.config.structure,
            augmented: self.config.augmented,
            files: files.into_iter().map(|file| CuratedFile { file }).collect(),
            funnel,
            rejects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{FileBatch, StageOutcome};
    use gh_sim::{GithubApi, License, Scraper, ScraperConfig, Universe, UniverseConfig};

    fn scraped_corpus(repos: usize, seed: u64) -> Vec<ExtractedFile> {
        let universe = Universe::generate(&UniverseConfig {
            repo_count: repos,
            seed,
            ..Default::default()
        });
        let api = GithubApi::new(&universe);
        Scraper::new(ScraperConfig::default())
            .run(&api)
            .expect("scrape")
            .files
    }

    #[test]
    fn freeset_pipeline_shrinks_the_corpus_stage_by_stage() {
        let files = scraped_corpus(120, 31);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        let funnel = dataset.funnel();
        assert!(funnel.initial() > funnel.after("license filter"));
        assert!(funnel.after("license filter") >= funnel.after("deduplication"));
        assert!(funnel.after("deduplication") >= funnel.after("syntax filter"));
        assert!(funnel.after("syntax filter") >= funnel.after("copyright filter"));
        assert!(funnel.is_monotone());
        assert_eq!(funnel.final_count(), dataset.len());
        assert!(!dataset.is_empty());
        assert!(dataset.total_chars() > 0);
    }

    #[test]
    fn funnel_shape_tracks_the_paper() {
        let files = scraped_corpus(250, 5);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        let funnel = dataset.funnel();
        // License survival near ~47%, dedup removal near ~62%.
        assert!(
            (0.30..=0.75).contains(&funnel.license_survival_rate()),
            "license survival {}",
            funnel.license_survival_rate()
        );
        assert!(
            (0.40..=0.80).contains(&funnel.dedup_removal_rate()),
            "dedup removal {}",
            funnel.dedup_removal_rate()
        );
        assert!(
            funnel.copyright_removal_rate() < 0.08,
            "copyright removal {}",
            funnel.copyright_removal_rate()
        );
    }

    #[test]
    fn parallel_output_is_identical_to_serial() {
        let files = scraped_corpus(100, 17);
        let serial = CurationPipeline::new(CurationConfig::freeset())
            .serial()
            .run(files.clone());
        let parallel = CurationPipeline::new(CurationConfig::freeset())
            .with_mode(ExecutionMode::Parallel)
            .run(files);
        // Structural equality covers files, funnel and all rejections…
        assert_eq!(serial, parallel);
        // …and the Debug rendering pins byte-identical output.
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn rejects_carry_stage_provenance() {
        let files = scraped_corpus(150, 77);
        let count = files.len();
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        // Conservation: every input file is either kept or rejected.
        assert_eq!(dataset.len() + dataset.rejects().len(), count);
        // Every enabled reason appears with its canonical stage name.
        for (reason, stage) in [
            (RejectReason::License, "license filter"),
            (RejectReason::Duplicate, "deduplication"),
            (RejectReason::Syntax, "syntax filter"),
            (RejectReason::Copyright, "copyright filter"),
        ] {
            let rejected: Vec<_> = dataset.rejects_for(reason).collect();
            assert!(!rejected.is_empty(), "no {reason:?} rejections");
            assert!(rejected.iter().all(|r| r.stage == stage));
        }
        // Duplicates carry their similarity detail.
        assert!(dataset.rejects_for(RejectReason::Duplicate).all(|r| r
            .detail
            .as_deref()
            .unwrap_or("")
            .contains("jaccard")));
    }

    #[test]
    fn copyright_rejects_are_reported_and_protected() {
        let files = scraped_corpus(200, 77);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        assert!(
            !dataset.copyright_rejects().is_empty(),
            "the planted proprietary files should be caught"
        );
        let detector = CopyrightDetector::new();
        for f in dataset.copyright_rejects() {
            assert!(detector.is_protected(&f.content));
            assert!(f.repo_license.is_accepted_open_source());
        }
        // And none of the kept files are protected.
        for f in dataset.files() {
            assert!(!detector.is_protected(f.content()));
        }
    }

    #[test]
    fn unfiltered_policy_keeps_everything() {
        let files = scraped_corpus(60, 3);
        let count = files.len();
        let dataset = CurationPipeline::new(CurationConfig::unfiltered("Raw")).run(files);
        assert_eq!(dataset.len(), count);
        assert_eq!(dataset.funnel().overall_survival_rate(), 1.0);
        assert!(dataset.rejects().is_empty());
    }

    #[test]
    fn length_cap_drops_large_files() {
        let files = scraped_corpus(60, 9);
        let mut config = CurationConfig::unfiltered("Capped");
        config.max_file_chars = Some(600);
        let dataset = CurationPipeline::new(config).run(files.clone());
        assert!(dataset.len() < files.len());
        assert!(dataset.files().iter().all(|f| f.char_len() <= 600));
        assert!(dataset
            .rejects()
            .iter()
            .all(|r| r.reason == RejectReason::LengthCap && r.stage == "length filter"));
    }

    #[test]
    fn permissive_only_filter_is_stricter() {
        let files = scraped_corpus(150, 13);
        let default = CurationPipeline::new(CurationConfig::freeset()).run(files.clone());
        let permissive = CurationPipeline::new(CurationConfig::freeset())
            .with_license_filter(LicenseFilter::permissive_only())
            .run(files);
        assert!(
            permissive.funnel().after("license filter") < default.funnel().after("license filter")
        );
    }

    #[test]
    fn curated_files_only_come_from_accepted_repos() {
        let files = scraped_corpus(100, 21);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        for f in dataset.files() {
            assert!(f.file.repo_license.is_accepted_open_source());
            assert_ne!(f.file.repo_license, License::Proprietary);
        }
    }

    #[test]
    fn dataset_metadata_reflects_config() {
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(vec![]);
        assert_eq!(dataset.name(), "FreeSet");
        assert_eq!(dataset.structure(), DatasetStructure::ContinualPretraining);
        assert!(!dataset.augmented());
        assert!(dataset.is_empty());
    }

    /// A custom stage: drops files under a minimum length.
    struct MinLengthStage {
        min_chars: usize,
    }

    impl CurationStage for MinLengthStage {
        fn name(&self) -> &str {
            "min-length"
        }

        fn apply(&self, batch: FileBatch) -> StageOutcome {
            batch.partition("min-length", RejectReason::LengthCap, |f| {
                f.char_len() >= self.min_chars
            })
        }
    }

    #[test]
    fn custom_stages_run_after_configured_stages() {
        let files = scraped_corpus(80, 41);
        let pipeline = CurationPipeline::new(CurationConfig::freeset())
            .with_stage(Box::new(MinLengthStage { min_chars: 200 }));
        assert_eq!(pipeline.stage_names().last().unwrap(), "min-length");
        let dataset = pipeline.run(files.clone());
        assert!(dataset.files().iter().all(|f| f.char_len() >= 200));
        // The funnel records the custom stage under its own name.
        assert!(dataset.funnel().stage("min-length").is_some());
        assert!(dataset.funnel().is_monotone());
        // And the reference run without the stage keeps shorter files.
        let plain = CurationPipeline::new(CurationConfig::freeset()).run(files);
        assert!(plain.files().iter().any(|f| f.char_len() < 200));
    }

    #[test]
    fn stage_list_matches_toggles() {
        let mut config = CurationConfig::unfiltered("Partial");
        config.deduplicate = true;
        config.max_file_chars = Some(1_000);
        let pipeline = CurationPipeline::new(config);
        assert_eq!(
            pipeline.stage_names(),
            vec!["length filter", "deduplication"]
        );
    }
}
