//! The end-to-end curation pipeline.

use gh_sim::ExtractedFile;
use serde::{Deserialize, Serialize};

use crate::copyright::CopyrightDetector;
use crate::dedup::{DedupConfig, Deduplicator};
use crate::funnel::FunnelStats;
use crate::license_filter::LicenseFilter;
use crate::syntax_filter::SyntaxFilter;

/// How the curated dataset is meant to be consumed downstream — mirrored from
/// Table I's "Dataset Structure" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetStructure {
    /// Raw files for continual (causal) pre-training — FreeSet and VeriGen.
    ContinualPretraining,
    /// Prompt/response pairs for instruction tuning — RTLCoder, CodeV, ….
    InstructionTuning,
}

/// Configuration of a curation run. Stage toggles exist so that prior works'
/// weaker policies can be reproduced for the comparison experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurationConfig {
    /// Human-readable policy name (e.g. `"FreeSet"`, `"VeriGen"`).
    pub name: String,
    /// Whether to drop files from repositories without an accepted license.
    pub check_repository_license: bool,
    /// Whether to run the per-file copyright keyword filter.
    pub check_file_copyright: bool,
    /// Whether to run MinHash/LSH de-duplication.
    pub deduplicate: bool,
    /// Whether to drop files that fail the syntax check.
    pub check_syntax: bool,
    /// Optional maximum file length in characters (CodeV-style truncation of
    /// the corpus; `None` keeps everything).
    pub max_file_chars: Option<usize>,
    /// De-duplication parameters.
    pub dedup: DedupConfig,
    /// Dataset structure produced by the policy.
    pub structure: DatasetStructure,
    /// Whether the policy augments the corpus with synthetic/LLM-generated
    /// data (recorded for Table I; this pipeline never fabricates files).
    pub augmented: bool,
}

impl CurationConfig {
    /// The paper's FreeSet policy: license check, copyright check,
    /// de-duplication and syntax check all enabled, no length cap.
    pub fn freeset() -> Self {
        Self {
            name: "FreeSet".into(),
            check_repository_license: true,
            check_file_copyright: true,
            deduplicate: true,
            check_syntax: true,
            max_file_chars: None,
            dedup: DedupConfig::default(),
            structure: DatasetStructure::ContinualPretraining,
            augmented: false,
        }
    }

    /// A policy that applies no filtering at all (the raw scrape).
    pub fn unfiltered(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            check_repository_license: false,
            check_file_copyright: false,
            deduplicate: false,
            check_syntax: false,
            max_file_chars: None,
            dedup: DedupConfig::default(),
            structure: DatasetStructure::ContinualPretraining,
            augmented: false,
        }
    }
}

/// One file of a curated dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuratedFile {
    /// The extracted file, with provenance.
    pub file: ExtractedFile,
}

impl CuratedFile {
    /// File length in characters.
    pub fn char_len(&self) -> usize {
        self.file.char_len()
    }

    /// The file contents.
    pub fn content(&self) -> &str {
        &self.file.content
    }
}

/// The output of a curation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuratedDataset {
    name: String,
    structure: DatasetStructure,
    augmented: bool,
    files: Vec<CuratedFile>,
    funnel: FunnelStats,
    copyright_rejects: Vec<ExtractedFile>,
}

impl CuratedDataset {
    /// Policy name that produced the dataset.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared dataset structure.
    pub fn structure(&self) -> DatasetStructure {
        self.structure
    }

    /// Whether the producing policy augments its data.
    pub fn augmented(&self) -> bool {
        self.augmented
    }

    /// The curated files.
    pub fn files(&self) -> &[CuratedFile] {
        &self.files
    }

    /// Number of files (Table I's "Size (Rows)").
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total size in characters (the proxy for Table I's on-disk size).
    pub fn total_chars(&self) -> usize {
        self.files.iter().map(CuratedFile::char_len).sum()
    }

    /// The stage-by-stage funnel.
    pub fn funnel(&self) -> &FunnelStats {
        &self.funnel
    }

    /// Files the copyright filter rejected — the raw material for the
    /// copyrighted reference set of the infringement benchmark.
    pub fn copyright_rejects(&self) -> &[ExtractedFile] {
        &self.copyright_rejects
    }

    /// Iterates over file contents (training corpus view).
    pub fn contents(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(|f| f.file.content.as_str())
    }
}

/// Runs the staged curation pipeline.
///
/// # Example
///
/// ```
/// use curation::{CurationConfig, CurationPipeline};
///
/// let pipeline = CurationPipeline::new(CurationConfig::freeset());
/// assert_eq!(pipeline.config().name, "FreeSet");
/// ```
#[derive(Debug, Clone)]
pub struct CurationPipeline {
    config: CurationConfig,
    license_filter: LicenseFilter,
    copyright_detector: CopyrightDetector,
    syntax_filter: SyntaxFilter,
}

impl CurationPipeline {
    /// Creates a pipeline from a policy configuration.
    pub fn new(config: CurationConfig) -> Self {
        Self {
            config,
            license_filter: LicenseFilter::paper_default(),
            copyright_detector: CopyrightDetector::new(),
            syntax_filter: SyntaxFilter::new(),
        }
    }

    /// Overrides the license filter (e.g. permissive-only ablations).
    pub fn with_license_filter(mut self, filter: LicenseFilter) -> Self {
        self.license_filter = filter;
        self
    }

    /// Overrides the copyright detector.
    pub fn with_copyright_detector(mut self, detector: CopyrightDetector) -> Self {
        self.copyright_detector = detector;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CurationConfig {
        &self.config
    }

    /// Runs the pipeline over a bank of extracted files.
    ///
    /// Stage order follows the paper: license filter → (length filter) →
    /// de-duplication → syntax check → per-file copyright check.
    pub fn run(&self, files: Vec<ExtractedFile>) -> CuratedDataset {
        let mut funnel = FunnelStats {
            initial: files.len(),
            ..Default::default()
        };

        // Stage 1: repository license filter.
        let files = if self.config.check_repository_license {
            let (accepted, _) = self.license_filter.partition(files);
            accepted
        } else {
            files
        };
        funnel.after_license_filter = files.len();

        // Stage 1b: optional length cap (prior-work policies only).
        let files: Vec<ExtractedFile> = match self.config.max_file_chars {
            Some(cap) => files.into_iter().filter(|f| f.char_len() <= cap).collect(),
            None => files,
        };
        funnel.after_length_filter = files.len();

        // Stage 2: MinHash/LSH de-duplication.
        let files = if self.config.deduplicate {
            let dedup = Deduplicator::new(self.config.dedup);
            let (kept, _) = dedup.dedup_files(files);
            kept
        } else {
            files
        };
        funnel.after_dedup = files.len();

        // Stage 3: syntax filter.
        let files: Vec<ExtractedFile> = if self.config.check_syntax {
            files
                .into_iter()
                .filter(|f| self.syntax_filter.passes(&f.content))
                .collect()
        } else {
            files
        };
        funnel.after_syntax_filter = files.len();

        // Stage 4: per-file copyright filter.
        let mut copyright_rejects = Vec::new();
        let files: Vec<ExtractedFile> = if self.config.check_file_copyright {
            files
                .into_iter()
                .filter_map(|f| {
                    if self.copyright_detector.is_protected(&f.content) {
                        copyright_rejects.push(f);
                        None
                    } else {
                        Some(f)
                    }
                })
                .collect()
        } else {
            files
        };
        funnel.after_copyright_filter = files.len();

        CuratedDataset {
            name: self.config.name.clone(),
            structure: self.config.structure,
            augmented: self.config.augmented,
            files: files.into_iter().map(|file| CuratedFile { file }).collect(),
            funnel,
            copyright_rejects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_sim::{GithubApi, License, Scraper, ScraperConfig, Universe, UniverseConfig};

    fn scraped_corpus(repos: usize, seed: u64) -> Vec<ExtractedFile> {
        let universe = Universe::generate(&UniverseConfig {
            repo_count: repos,
            seed,
            ..Default::default()
        });
        let api = GithubApi::new(&universe);
        Scraper::new(ScraperConfig::default())
            .run(&api)
            .expect("scrape")
            .files
    }

    #[test]
    fn freeset_pipeline_shrinks_the_corpus_stage_by_stage() {
        let files = scraped_corpus(120, 31);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        let funnel = dataset.funnel();
        assert!(funnel.initial > funnel.after_license_filter);
        assert!(funnel.after_length_filter >= funnel.after_dedup);
        assert!(funnel.after_dedup >= funnel.after_syntax_filter);
        assert!(funnel.after_syntax_filter >= funnel.after_copyright_filter);
        assert_eq!(funnel.final_count(), dataset.len());
        assert!(!dataset.is_empty());
        assert!(dataset.total_chars() > 0);
    }

    #[test]
    fn funnel_shape_tracks_the_paper() {
        let files = scraped_corpus(250, 5);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        let funnel = dataset.funnel();
        // License survival near ~47%, dedup removal near ~62%.
        assert!(
            (0.30..=0.75).contains(&funnel.license_survival_rate()),
            "license survival {}",
            funnel.license_survival_rate()
        );
        assert!(
            (0.40..=0.80).contains(&funnel.dedup_removal_rate()),
            "dedup removal {}",
            funnel.dedup_removal_rate()
        );
        assert!(
            funnel.copyright_removal_rate() < 0.08,
            "copyright removal {}",
            funnel.copyright_removal_rate()
        );
    }

    #[test]
    fn copyright_rejects_are_reported_and_protected() {
        let files = scraped_corpus(200, 77);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        assert!(
            !dataset.copyright_rejects().is_empty(),
            "the planted proprietary files should be caught"
        );
        let detector = CopyrightDetector::new();
        for f in dataset.copyright_rejects() {
            assert!(detector.is_protected(&f.content));
            assert!(f.repo_license.is_accepted_open_source());
        }
        // And none of the kept files are protected.
        for f in dataset.files() {
            assert!(!detector.is_protected(f.content()));
        }
    }

    #[test]
    fn unfiltered_policy_keeps_everything() {
        let files = scraped_corpus(60, 3);
        let count = files.len();
        let dataset = CurationPipeline::new(CurationConfig::unfiltered("Raw")).run(files);
        assert_eq!(dataset.len(), count);
        assert_eq!(dataset.funnel().overall_survival_rate(), 1.0);
    }

    #[test]
    fn length_cap_drops_large_files() {
        let files = scraped_corpus(60, 9);
        let mut config = CurationConfig::unfiltered("Capped");
        config.max_file_chars = Some(600);
        let dataset = CurationPipeline::new(config).run(files.clone());
        assert!(dataset.len() < files.len());
        assert!(dataset.files().iter().all(|f| f.char_len() <= 600));
    }

    #[test]
    fn permissive_only_filter_is_stricter() {
        let files = scraped_corpus(150, 13);
        let default = CurationPipeline::new(CurationConfig::freeset()).run(files.clone());
        let permissive = CurationPipeline::new(CurationConfig::freeset())
            .with_license_filter(LicenseFilter::permissive_only())
            .run(files);
        assert!(permissive.funnel().after_license_filter < default.funnel().after_license_filter);
    }

    #[test]
    fn curated_files_only_come_from_accepted_repos() {
        let files = scraped_corpus(100, 21);
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        for f in dataset.files() {
            assert!(f.file.repo_license.is_accepted_open_source());
            assert_ne!(f.file.repo_license, License::Proprietary);
        }
    }

    #[test]
    fn dataset_metadata_reflects_config() {
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(vec![]);
        assert_eq!(dataset.name(), "FreeSet");
        assert_eq!(dataset.structure(), DatasetStructure::ContinualPretraining);
        assert!(!dataset.augmented());
        assert!(dataset.is_empty());
    }
}
