//! Semantic lint stage: rejects files the [`verilog::lint`] engine condemns.
//!
//! The syntax filter asks "does it parse?"; this stage asks "is it
//! *plausible* hardware?". Each file is parsed and run through the full
//! rule catalogue ([`verilog::RuleId`]); a [`LintRejectPolicy`] decides
//! which findings condemn the file. Rejections carry the offending rule's
//! kebab-case id as their [`crate::RejectedFile::category`], so the funnel
//! reports per-rule removal counts ([`crate::StageCount::categories`]).
//!
//! Verdicts are per-file and stateless, so the stage is batch-invariant:
//! it streams through a [`crate::CurationSession`] and its parallel output
//! is byte-identical to serial output.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use verilog::{LintConfig, LintDiagnostic, Linter, Severity};

use crate::parse_cache::ParseCache;
use crate::stage::{stage_names, CurationStage, FileBatch, RejectReason, StageOutcome};

/// Which lint findings condemn a file.
///
/// The default rejects only [`Severity::Error`] findings — semantically
/// broken hardware (combinational loops, multiply-driven nets, undeclared
/// identifiers, malformed instantiations) — and keeps files that merely
/// carry style warnings. Lowering `min_severity` to [`Severity::Warning`]
/// turns the stage into a strict cleanliness gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintRejectPolicy {
    /// Findings at or above this severity reject the file.
    pub min_severity: Severity,
    /// Kebab-case rule ids (see [`verilog::RuleId::id`]) that never fire.
    pub disabled_rules: Vec<String>,
}

impl Default for LintRejectPolicy {
    fn default() -> Self {
        Self {
            min_severity: Severity::Error,
            disabled_rules: Vec::new(),
        }
    }
}

impl LintRejectPolicy {
    /// A policy rejecting on warnings as well as errors.
    pub fn strict() -> Self {
        Self {
            min_severity: Severity::Warning,
            disabled_rules: Vec::new(),
        }
    }
}

/// Removes files that fail semantic lint analysis
/// ([`stage_names::LINT`]).
///
/// Files that do not parse at all are also rejected (category
/// `"parse-error"`) — under the FreeSet policy the syntax filter runs
/// first so this path is normally unreachable, but the stage stays safe
/// when composed into policies without a syntax check.
#[derive(Debug, Clone)]
pub struct LintStage {
    policy: LintRejectPolicy,
    linter: Linter,
    cache: Option<Arc<ParseCache>>,
}

impl LintStage {
    /// Stage enforcing the given policy.
    pub fn new(policy: LintRejectPolicy) -> Self {
        let linter = Linter::with_config(LintConfig {
            disabled_rules: policy.disabled_rules.clone(),
        });
        Self {
            policy,
            linter,
            cache: None,
        }
    }

    /// Stage that reuses parses deposited in `cache` by an upstream
    /// [`crate::SyntaxStage`] instead of re-parsing — the pipeline's
    /// parse-once contract. Files absent from the cache (e.g. when the
    /// stage runs without a syntax filter upstream) are parsed here as a
    /// fallback.
    pub fn with_cache(policy: LintRejectPolicy, cache: Arc<ParseCache>) -> Self {
        let mut stage = Self::new(policy);
        stage.cache = Some(cache);
        stage
    }

    /// The policy in force.
    pub fn policy(&self) -> &LintRejectPolicy {
        &self.policy
    }

    /// Judges one file: `None` keeps it, `Some((category, detail))`
    /// rejects it.
    fn verdict(&self, content: &str) -> Option<(String, String)> {
        let cached = self.cache.as_ref().and_then(|cache| cache.take(content));
        let diagnostics = match cached {
            Some(parsed) => self.linter.lint_parsed(&parsed),
            None => match self.linter.lint_source(content) {
                Ok(diagnostics) => diagnostics,
                Err(error) => {
                    return Some(("parse-error".into(), format!("does not parse: {error}")))
                }
            },
        };
        let offending: Vec<&LintDiagnostic> = diagnostics
            .iter()
            .filter(|d| d.severity >= self.policy.min_severity)
            .collect();
        // Lead with the worst finding; ties break to the first in the
        // linter's deterministic (rule, locus, message) order.
        let max = offending.iter().map(|d| d.severity).max()?;
        let worst = *offending.iter().find(|d| d.severity == max)?;
        let detail = if offending.len() == 1 {
            worst.to_string()
        } else {
            format!("{} findings; worst: {worst}", offending.len())
        };
        Some((worst.rule.id().to_string(), detail))
    }
}

impl Default for LintStage {
    fn default() -> Self {
        Self::new(LintRejectPolicy::default())
    }
}

impl CurationStage for LintStage {
    fn name(&self) -> &str {
        stage_names::LINT
    }

    fn apply(&self, batch: FileBatch) -> StageOutcome {
        // Lint in parallel (order-stable), partition serially so each
        // rejection keeps its rule category and detail.
        let verdicts = batch.map_files(|f| self.verdict(&f.content));
        let mut outcome = StageOutcome::with_capacity(batch.len());
        for (file, verdict) in batch.into_files().into_iter().zip(verdicts) {
            match verdict {
                None => outcome.kept.push(file),
                Some((category, detail)) => outcome.reject_with_category(
                    file,
                    stage_names::LINT,
                    RejectReason::Lint,
                    Some(category),
                    Some(detail),
                ),
            }
        }
        outcome
    }

    fn batch_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::ExecutionMode;
    use gh_sim::{DefectKind, ExtractedFile, License};

    fn file(i: usize, content: &str) -> ExtractedFile {
        ExtractedFile {
            repo_id: i as u64,
            repo_full_name: format!("o/r{i}"),
            owner: "o".into(),
            repo_license: License::Mit,
            created_year: 2021,
            path: format!("f{i}.v"),
            content: content.into(),
        }
    }

    const CLEAN: &str = "module ok(input a, input b, output y);\nassign y = a & b;\nendmodule\n";

    #[test]
    fn default_policy_rejects_errors_and_keeps_warnings() {
        let stage = LintStage::default();
        // Error-severity defect: combinational loop.
        assert!(stage.verdict(&DefectKind::CombLoop.source("bad")).is_some());
        // Warning-severity defect: inferred latch — kept by default.
        assert!(stage
            .verdict(&DefectKind::IncompleteIf.source("warned"))
            .is_none());
        assert!(stage.verdict(CLEAN).is_none());
    }

    #[test]
    fn strict_policy_rejects_warnings_too() {
        let stage = LintStage::new(LintRejectPolicy::strict());
        assert!(stage
            .verdict(&DefectKind::IncompleteIf.source("warned"))
            .is_some());
        assert!(stage.verdict(CLEAN).is_none());
    }

    #[test]
    fn rejections_carry_rule_category_and_detail() {
        let stage = LintStage::default();
        let batch = FileBatch::new(
            vec![
                file(0, CLEAN),
                file(1, &DefectKind::CombLoop.source("looped")),
                file(2, &DefectKind::MultiplyDriven.source("fought")),
            ],
            ExecutionMode::Serial,
        );
        let outcome = stage.apply(batch);
        assert_eq!(outcome.kept.len(), 1);
        assert_eq!(outcome.rejected.len(), 2);
        assert_eq!(outcome.rejected[0].category.as_deref(), Some("comb-loop"));
        assert_eq!(
            outcome.rejected[1].category.as_deref(),
            Some("multiply-driven")
        );
        for reject in &outcome.rejected {
            assert_eq!(reject.reason, RejectReason::Lint);
            assert_eq!(reject.stage, stage_names::LINT);
            assert!(reject.detail.as_deref().unwrap_or("").contains("error"));
        }
    }

    #[test]
    fn unparsable_files_are_rejected_not_panicked() {
        let stage = LintStage::default();
        let (category, detail) = stage.verdict("module broken(").expect("must reject");
        assert_eq!(category, "parse-error");
        assert!(detail.contains("does not parse"));
    }

    #[test]
    fn disabled_rules_keep_their_files() {
        let stage = LintStage::new(LintRejectPolicy {
            min_severity: Severity::Error,
            disabled_rules: vec!["comb-loop".into()],
        });
        assert!(stage
            .verdict(&DefectKind::CombLoop.source("muted"))
            .is_none());
    }

    #[test]
    fn serial_and_parallel_verdicts_agree() {
        let files: Vec<ExtractedFile> = DefectKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| file(i, &kind.source(&format!("bad_{}", kind.tag()))))
            .chain(std::iter::once(file(99, CLEAN)))
            .collect();
        let stage = LintStage::new(LintRejectPolicy::strict());
        let serial = stage.apply(FileBatch::new(files.clone(), ExecutionMode::Serial));
        let parallel = stage.apply(FileBatch::new(files, ExecutionMode::Parallel));
        assert_eq!(serial.kept, parallel.kept);
        assert_eq!(serial.rejected, parallel.rejected);
        assert_eq!(serial.kept.len(), 1);
    }
}
