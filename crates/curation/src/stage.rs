//! The curation stage engine: first-class, composable pipeline stages.
//!
//! Each curation policy is a sequence of [`CurationStage`]s. A stage consumes
//! a [`FileBatch`], keeps some files and rejects the rest with per-file
//! provenance ([`RejectedFile`] carrying a [`RejectReason`]). The pipeline
//! threads the survivors of one stage into the next and aggregates the
//! rejections, so any policy — the paper's FreeSet funnel, a prior work's
//! weaker policy, or a custom experiment — is just a different stage list.
//!
//! Stages whose per-file decisions are independent (license, length cap,
//! syntax, copyright) fan out across threads when the batch runs in
//! [`ExecutionMode::Parallel`]; verdicts are computed in parallel but files
//! are partitioned in input order, so parallel output is identical to serial
//! output. De-duplication is inherently sequential (first occurrence wins)
//! but parallelises its MinHash signature construction — see
//! [`crate::dedup::Deduplicator`].

use std::io;

use gh_sim::ExtractedFile;
use serde::{Deserialize, Serialize};

/// Whether per-file work fans out across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Single-threaded; the reference behaviour.
    Serial,
    /// Multi-threaded with order-stable merging: output is byte-identical to
    /// [`ExecutionMode::Serial`].
    #[default]
    Parallel,
}

/// Why a file was removed from the corpus (§III-C/D's filter taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The repository carries no accepted open-source license.
    License,
    /// The file exceeds the policy's maximum length.
    LengthCap,
    /// The file is a near-duplicate of an earlier file.
    Duplicate,
    /// The file does not lex/parse.
    Syntax,
    /// The file parses but fails the semantic lint policy (see
    /// [`crate::LintStage`]; the offending rule id is recorded in
    /// [`RejectedFile::category`]).
    Lint,
    /// The file's header carries proprietary-copyright language.
    Copyright,
}

/// A rejected file with full provenance: which stage removed it, why, and
/// any stage-specific detail (e.g. the matched copyright keywords).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectedFile {
    /// The file that was removed.
    pub file: ExtractedFile,
    /// Name of the stage that removed it.
    pub stage: String,
    /// The reject reason.
    pub reason: RejectReason,
    /// Optional machine-readable sub-category of the reason — e.g. the
    /// kebab-case lint rule id ("comb-loop") that condemned the file. The
    /// funnel folds these into per-rule counts
    /// ([`crate::StageCount::categories`]).
    pub category: Option<String>,
    /// Optional human-readable detail.
    pub detail: Option<String>,
}

/// A batch of files flowing through the pipeline, tagged with the execution
/// mode stages should use for their per-file work.
#[derive(Debug, Clone)]
pub struct FileBatch {
    files: Vec<ExtractedFile>,
    mode: ExecutionMode,
}

impl FileBatch {
    /// Wraps files in a batch with the given execution mode.
    pub fn new(files: Vec<ExtractedFile>, mode: ExecutionMode) -> Self {
        Self { files, mode }
    }

    /// The files in the batch.
    pub fn files(&self) -> &[ExtractedFile] {
        &self.files
    }

    /// Unwraps the files.
    pub fn into_files(self) -> Vec<ExtractedFile> {
        self.files
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The execution mode stages should honour.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Maps every file through `f`, in parallel when the batch mode asks for
    /// it, always returning results in input order.
    pub fn map_files<R: Send>(&self, f: impl Fn(&ExtractedFile) -> R + Sync) -> Vec<R> {
        match self.mode {
            ExecutionMode::Serial => self.files.iter().map(f).collect(),
            ExecutionMode::Parallel => {
                use rayon::prelude::*;
                self.files.par_iter().map(f).collect()
            }
        }
    }

    /// Splits the batch with a per-file predicate: files for which `keep`
    /// returns `true` survive, the rest are rejected under `stage`/`reason`.
    ///
    /// Verdicts are computed per-file (in parallel when the mode asks for it)
    /// and the partition preserves input order, so the outcome is identical
    /// in both execution modes.
    pub fn partition(
        self,
        stage: &str,
        reason: RejectReason,
        keep: impl Fn(&ExtractedFile) -> bool + Sync,
    ) -> StageOutcome {
        let verdicts = self.map_files(|f| keep(f));
        let mut outcome = StageOutcome::with_capacity(self.files.len());
        for (file, keep) in self.files.into_iter().zip(verdicts) {
            if keep {
                outcome.kept.push(file);
            } else {
                outcome.reject(file, stage, reason, None);
            }
        }
        outcome
    }
}

/// The result of applying one stage to a batch.
#[derive(Debug, Clone, Default)]
pub struct StageOutcome {
    /// Files surviving the stage, in input order.
    pub kept: Vec<ExtractedFile>,
    /// Files the stage removed, in input order, with provenance.
    pub rejected: Vec<RejectedFile>,
}

impl StageOutcome {
    /// An outcome with capacity reserved for `n` keeps.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            kept: Vec::with_capacity(n),
            rejected: Vec::new(),
        }
    }

    /// An outcome that keeps every file.
    pub fn keep_all(files: Vec<ExtractedFile>) -> Self {
        Self {
            kept: files,
            rejected: Vec::new(),
        }
    }

    /// Records a rejection.
    pub fn reject(
        &mut self,
        file: ExtractedFile,
        stage: &str,
        reason: RejectReason,
        detail: Option<String>,
    ) {
        self.reject_with_category(file, stage, reason, None, detail);
    }

    /// Records a rejection carrying a machine-readable sub-category (e.g.
    /// the lint rule id).
    pub fn reject_with_category(
        &mut self,
        file: ExtractedFile,
        stage: &str,
        reason: RejectReason,
        category: Option<String>,
        detail: Option<String>,
    ) {
        self.rejected.push(RejectedFile {
            file,
            stage: stage.to_string(),
            reason,
            category,
            detail,
        });
    }

    /// Total files that entered the stage (kept + rejected).
    pub fn total(&self) -> usize {
        self.kept.len() + self.rejected.len()
    }
}

/// A stateful, per-session instance of a stage consuming a stream of
/// batches.
///
/// Obtained from [`CurationStage::open_stream`]; a [`crate::CurationSession`]
/// feeds every pushed batch through the stream in arrival order. A stream
/// must be *prefix-consistent*: after pushing batches `b₁ … bₙ`, the
/// concatenation of the returned outcomes must equal the outcome of the
/// stage's one-shot [`CurationStage::apply`] over `b₁ ⧺ … ⧺ bₙ` — same kept
/// files, same rejections, same provenance text. That is what lets the
/// session guarantee streamed output byte-identical to a one-shot run.
pub trait StageStream: Send {
    /// Feeds one batch through the stage, carrying state forward to the next
    /// push.
    ///
    /// # Errors
    ///
    /// Streams backed by spill files (see [`crate::DedupSpillConfig`])
    /// surface their IO failures here instead of panicking; purely in-memory
    /// streams never error. After an error the stream's carried state is
    /// suspect — discard the session rather than pushing further batches.
    fn push(&mut self, batch: FileBatch) -> io::Result<StageOutcome>;
}

/// How a stage participates in a [`crate::CurationSession`]'s streaming
/// intake — the result of [`CurationStage::open_stream`].
pub enum StageStreaming {
    /// The stage cannot stream: the session defers it, and every stage after
    /// it, to `finish()`. The conservative answer, always correct.
    Deferred,
    /// The stage is batch-invariant: per-batch `apply` needs no carried
    /// state, so the session simply applies it to each batch as it arrives.
    Stateless,
    /// The stage streams through per-session state (e.g. de-duplication
    /// against the persistent kept-index).
    Stateful(Box<dyn StageStream>),
}

/// A curation stage: a named transformation that partitions a batch into
/// survivors and provenance-tagged rejections.
///
/// Implementations must be deterministic in their input (the pipeline's
/// serial/parallel equivalence guarantee relies on it) and must conserve
/// files: every input file appears exactly once in `kept` or `rejected`.
///
/// The pipeline executor re-stamps every rejection's `stage` field with
/// [`CurationStage::name`], so funnel counts and rejection provenance always
/// key identically even if `apply` tags rejections with a different label.
pub trait CurationStage: Send + Sync {
    /// The stage's name — the key under which the funnel records its counts.
    fn name(&self) -> &str;

    /// Applies the stage to a batch.
    fn apply(&self, batch: FileBatch) -> StageOutcome;

    /// Whether the stage's per-file verdicts are independent of the rest of
    /// the batch, so that applying it to a stream of batches produces the
    /// same result as applying it to their concatenation.
    ///
    /// Defaults to `false` — the conservative answer, always correct.
    fn batch_invariant(&self) -> bool {
        false
    }

    /// Opens this stage's streaming form for one [`crate::CurationSession`].
    ///
    /// The default derives the answer from [`Self::batch_invariant`]:
    /// invariant stages stream statelessly, everything else is deferred.
    /// Stages that are order-dependent but can carry their cross-batch state
    /// explicitly (de-duplication against a persistent kept-index) override
    /// this to return [`StageStreaming::Stateful`], which lets the session
    /// run them incrementally while the scrape is still in flight.
    ///
    /// # Errors
    ///
    /// Stages whose streaming state lives partly on disk (spill-backed
    /// de-duplication) return the IO error that prevented opening it; all
    /// other stages — including this default — never error.
    fn open_stream(&self) -> io::Result<StageStreaming> {
        Ok(if self.batch_invariant() {
            StageStreaming::Stateless
        } else {
            StageStreaming::Deferred
        })
    }
}

/// Canonical stage names, shared by the stage implementations, the funnel's
/// paper-rate accessors and the experiment reports.
pub mod stage_names {
    /// Repository license filter.
    pub const LICENSE: &str = "license filter";
    /// Maximum-file-length filter.
    pub const LENGTH: &str = "length filter";
    /// MinHash/LSH de-duplication.
    pub const DEDUP: &str = "deduplication";
    /// Syntax check.
    pub const SYNTAX: &str = "syntax filter";
    /// Semantic lint check.
    pub const LINT: &str = "lint filter";
    /// Per-file copyright check.
    pub const COPYRIGHT: &str = "copyright filter";
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_sim::License;

    fn file(i: usize, content: &str) -> ExtractedFile {
        ExtractedFile {
            repo_id: i as u64,
            repo_full_name: format!("o/r{i}"),
            owner: "o".into(),
            repo_license: License::Mit,
            created_year: 2020,
            path: format!("f{i}.v"),
            content: content.into(),
        }
    }

    #[test]
    fn partition_is_order_stable_and_conserving() {
        for mode in [ExecutionMode::Serial, ExecutionMode::Parallel] {
            let files: Vec<ExtractedFile> = (0..100)
                .map(|i| file(i, if i % 3 == 0 { "keep" } else { "drop" }))
                .collect();
            let outcome =
                FileBatch::new(files.clone(), mode)
                    .partition("test", RejectReason::Syntax, |f| f.content == "keep");
            assert_eq!(outcome.total(), 100);
            assert_eq!(outcome.kept.len(), 34);
            assert!(outcome.kept.windows(2).all(|w| w[0].repo_id < w[1].repo_id));
            assert!(outcome
                .rejected
                .windows(2)
                .all(|w| w[0].file.repo_id < w[1].file.repo_id));
            assert!(outcome
                .rejected
                .iter()
                .all(|r| r.reason == RejectReason::Syntax));
            assert!(outcome.rejected.iter().all(|r| r.stage == "test"));
        }
    }

    #[test]
    fn serial_and_parallel_partitions_agree() {
        let files: Vec<ExtractedFile> = (0..257)
            .map(|i| file(i, &format!("content {}", i % 7)))
            .collect();
        let serial = FileBatch::new(files.clone(), ExecutionMode::Serial).partition(
            "s",
            RejectReason::LengthCap,
            |f| f.content.len() % 2 == 0,
        );
        let parallel = FileBatch::new(files, ExecutionMode::Parallel).partition(
            "s",
            RejectReason::LengthCap,
            |f| f.content.len() % 2 == 0,
        );
        assert_eq!(serial.kept, parallel.kept);
        assert_eq!(serial.rejected, parallel.rejected);
    }

    #[test]
    fn map_files_preserves_order_in_both_modes() {
        let files: Vec<ExtractedFile> = (0..64).map(|i| file(i, "x")).collect();
        let serial = FileBatch::new(files.clone(), ExecutionMode::Serial).map_files(|f| f.repo_id);
        let parallel = FileBatch::new(files, ExecutionMode::Parallel).map_files(|f| f.repo_id);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..64).collect::<Vec<u64>>());
    }
}
