//! Per-file copyright detection (§III-C2).
//!
//! The paper scans the header comments of every file for "combinations of
//! keywords such as 'proprietary', 'confidential' and 'all rights reserved'"
//! and removes matching files even when the containing repository claims an
//! open-source license. The same scan, run over the whole universe, is how
//! the *copyrighted reference set* for the infringement benchmark is built.

use serde::{Deserialize, Serialize};
use verilog::extract_header_comment;

/// The outcome of scanning one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyrightFinding {
    /// Keywords (lower-cased) that matched in the header.
    pub matched_keywords: Vec<String>,
    /// The copyright holder, when a `Copyright ...` line could be parsed.
    pub holder: Option<String>,
}

/// Scans file headers for proprietary-copyright language.
///
/// # Example
///
/// ```
/// use curation::CopyrightDetector;
///
/// let detector = CopyrightDetector::new();
/// let protected = "// Copyright (C) 2020 Intel Corporation. All rights reserved.\n\
///                  // This design is PROPRIETARY and CONFIDENTIAL.\nmodule m; endmodule";
/// assert!(detector.is_protected(protected));
///
/// let open = "// Copyright (c) 2020 Jane Doe\n// SPDX-License-Identifier: MIT\nmodule m; endmodule";
/// assert!(!detector.is_protected(open));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyrightDetector {
    /// Keywords that individually mark a file as proprietary.
    strong_keywords: Vec<String>,
    /// Keywords that mark a file as proprietary only in combination with a
    /// copyright statement.
    weak_keywords: Vec<String>,
}

impl Default for CopyrightDetector {
    fn default() -> Self {
        Self {
            strong_keywords: vec![
                "proprietary".into(),
                "confidential".into(),
                "trade secret".into(),
                "do not distribute".into(),
                "unauthorized reproduction".into(),
                "internal use only".into(),
            ],
            weak_keywords: vec!["all rights reserved".into()],
        }
    }
}

impl CopyrightDetector {
    /// Creates a detector with the default keyword lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with custom keyword lists. `strong` keywords flag a
    /// file on their own; `weak` keywords flag a file only when a copyright
    /// statement is also present.
    pub fn with_keywords(strong: Vec<String>, weak: Vec<String>) -> Self {
        Self {
            strong_keywords: strong.into_iter().map(|k| k.to_lowercase()).collect(),
            weak_keywords: weak.into_iter().map(|k| k.to_lowercase()).collect(),
        }
    }

    /// The strong keyword list.
    pub fn strong_keywords(&self) -> &[String] {
        &self.strong_keywords
    }

    /// Scans a file, returning a finding when it looks copyright-protected.
    ///
    /// Only the header comment block is inspected, matching the paper
    /// ("check the header comments of individual files").
    pub fn scan(&self, content: &str) -> Option<CopyrightFinding> {
        let header = extract_header_comment(content).to_lowercase();
        if header.is_empty() {
            return None;
        }
        let has_copyright_line = header.contains("copyright") || header.contains("(c)");
        let mut matched: Vec<String> = Vec::new();
        for kw in &self.strong_keywords {
            if header.contains(kw.as_str()) {
                matched.push(kw.clone());
            }
        }
        for kw in &self.weak_keywords {
            if header.contains(kw.as_str()) && has_copyright_line {
                matched.push(kw.clone());
            }
        }
        // An SPDX identifier for an open license is a strong signal the
        // "all rights reserved" boilerplate is part of a permissive notice
        // (BSD licenses contain that phrase), so require a strong keyword in
        // that case.
        let has_open_spdx = header.contains("spdx-license-identifier")
            && !header.contains("licenseref-proprietary");
        let strongly_matched = matched.iter().any(|k| self.strong_keywords.contains(k));
        if matched.is_empty() || (has_open_spdx && !strongly_matched) {
            return None;
        }
        Some(CopyrightFinding {
            matched_keywords: matched,
            holder: extract_holder(&extract_header_comment(content)),
        })
    }

    /// Convenience predicate: is the file copyright-protected?
    pub fn is_protected(&self, content: &str) -> bool {
        self.scan(content).is_some()
    }
}

/// Pulls the copyright holder out of a `Copyright (c) YEAR Holder` line.
fn extract_holder(header: &str) -> Option<String> {
    for line in header.lines() {
        let lower = line.to_lowercase();
        if let Some(pos) = lower.find("copyright") {
            // Drop the `(c)` marker and leading years/punctuation, keep the
            // text up to the first sentence break.
            let rest = line[pos + "copyright".len()..]
                .replace("(c)", " ")
                .replace("(C)", " ");
            let holder: String = rest
                .chars()
                .skip_while(|c| !c.is_ascii_alphabetic())
                .collect();
            let holder = holder
                .split(['.', ',', ';'])
                .next()
                .unwrap_or("")
                .trim()
                .to_string();
            if !holder.is_empty() {
                return Some(holder);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROPRIETARY: &str = "// Copyright (C) 2019 Intel Corporation. All rights reserved.\n\
                               // This design is PROPRIETARY and CONFIDENTIAL to Intel Corporation.\n\
                               module secret_alu(input a, output y); assign y = a; endmodule";

    const MIT_FILE: &str = "// Copyright (c) 2021 fpga-hobbyist\n// SPDX-License-Identifier: MIT\n\
                            // Permission is hereby granted, free of charge...\n\
                            module open_alu(input a, output y); assign y = a; endmodule";

    const BSD_FILE: &str = "// Copyright (c) 2020, chipforge\n// SPDX-License-Identifier: BSD-3-Clause\n\
                            // Redistribution and use in source and binary forms, with or without modification, are permitted.\n\
                            module bsd_alu(input a, output y); assign y = a; endmodule";

    #[test]
    fn proprietary_headers_are_flagged() {
        let d = CopyrightDetector::new();
        let finding = d.scan(PROPRIETARY).expect("should be flagged");
        assert!(finding.matched_keywords.iter().any(|k| k == "proprietary"));
        assert!(finding.matched_keywords.iter().any(|k| k == "confidential"));
        assert_eq!(finding.holder.as_deref(), Some("Intel Corporation"));
    }

    #[test]
    fn permissive_headers_are_not_flagged() {
        let d = CopyrightDetector::new();
        assert!(!d.is_protected(MIT_FILE));
        assert!(
            !d.is_protected(BSD_FILE),
            "BSD boilerplate must not be flagged"
        );
    }

    #[test]
    fn all_rights_reserved_alone_without_spdx_is_flagged() {
        let d = CopyrightDetector::new();
        let src = "// Copyright 2018 MegaCorp. All rights reserved.\nmodule m; endmodule";
        assert!(d.is_protected(src));
    }

    #[test]
    fn keywords_in_code_body_are_ignored() {
        let d = CopyrightDetector::new();
        // The word "confidential" appears only in a non-header comment / code.
        let src = "module m(input a, output y);\n// stores the confidential flag\nassign y = a;\nendmodule";
        assert!(!d.is_protected(src));
    }

    #[test]
    fn files_without_headers_are_not_flagged() {
        let d = CopyrightDetector::new();
        assert!(!d.is_protected("module m(input a, output y); assign y = a; endmodule"));
        assert!(!d.is_protected(""));
    }

    #[test]
    fn custom_keywords_are_respected() {
        let d = CopyrightDetector::with_keywords(vec!["Top Secret".into()], vec![]);
        let src = "// TOP SECRET hardware block\nmodule m; endmodule";
        assert!(d.is_protected(src));
        assert!(
            !d.is_protected(PROPRIETARY),
            "default keywords are replaced"
        );
        assert_eq!(d.strong_keywords(), &["top secret".to_string()]);
    }

    #[test]
    fn holder_extraction_handles_variants() {
        assert_eq!(
            extract_holder("Copyright (C) 2019 Xilinx Inc."),
            Some("Xilinx Inc".to_string())
        );
        assert_eq!(extract_holder("no legal text here"), None);
    }
}
