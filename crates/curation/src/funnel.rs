//! Stage-by-stage dataset funnel statistics (§IV-A).
//!
//! The paper reports how each curation stage shrinks the corpus: 1.3 million
//! extracted files, 608 180 after the license filter, 62.5 % removed by LSH
//! de-duplication, and a final dataset of 222 624 files after the syntax and
//! copyright checks. [`FunnelStats`] captures the same funnel for a pipeline
//! run.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counts of surviving files after each curation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FunnelStats {
    /// Files entering the pipeline (the raw scrape).
    pub initial: usize,
    /// Files surviving the repository license filter.
    pub after_license_filter: usize,
    /// Files surviving the optional maximum-length filter (equal to the
    /// previous stage when the policy has no length cap).
    pub after_length_filter: usize,
    /// Files surviving MinHash/LSH de-duplication.
    pub after_dedup: usize,
    /// Files surviving the syntax check.
    pub after_syntax_filter: usize,
    /// Files surviving the per-file copyright check — the final dataset size.
    pub after_copyright_filter: usize,
}

impl FunnelStats {
    /// The final dataset size.
    pub fn final_count(&self) -> usize {
        self.after_copyright_filter
    }

    /// Fraction of the initial corpus that survived the license filter.
    pub fn license_survival_rate(&self) -> f64 {
        ratio(self.after_license_filter, self.initial)
    }

    /// Fraction of the de-duplication *input* removed as duplicates (the
    /// paper reports 62.5 %).
    pub fn dedup_removal_rate(&self) -> f64 {
        if self.after_length_filter == 0 {
            return 0.0;
        }
        1.0 - ratio(self.after_dedup, self.after_length_filter)
    }

    /// Fraction of the de-duplicated corpus removed by the copyright check
    /// (the paper reports roughly 1 % of the original corpus; ~2k of ~228k
    /// deduplicated files).
    pub fn copyright_removal_rate(&self) -> f64 {
        if self.after_syntax_filter == 0 {
            return 0.0;
        }
        1.0 - ratio(self.after_copyright_filter, self.after_syntax_filter)
    }

    /// Fraction of the initial corpus that made it into the final dataset.
    pub fn overall_survival_rate(&self) -> f64 {
        ratio(self.final_count(), self.initial)
    }

    /// Files removed by each named stage, as `(stage, removed)` rows.
    pub fn removals(&self) -> Vec<(&'static str, usize)> {
        vec![
            (
                "license filter",
                self.initial.saturating_sub(self.after_license_filter),
            ),
            (
                "length filter",
                self.after_license_filter
                    .saturating_sub(self.after_length_filter),
            ),
            (
                "deduplication",
                self.after_length_filter.saturating_sub(self.after_dedup),
            ),
            (
                "syntax filter",
                self.after_dedup.saturating_sub(self.after_syntax_filter),
            ),
            (
                "copyright filter",
                self.after_syntax_filter
                    .saturating_sub(self.after_copyright_filter),
            ),
        ]
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for FunnelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "extracted files          : {:>10}", self.initial)?;
        writeln!(
            f,
            "after license filter     : {:>10}  ({:.1}% kept)",
            self.after_license_filter,
            100.0 * self.license_survival_rate()
        )?;
        writeln!(
            f,
            "after length filter      : {:>10}",
            self.after_length_filter
        )?;
        writeln!(
            f,
            "after de-duplication     : {:>10}  ({:.1}% removed)",
            self.after_dedup,
            100.0 * self.dedup_removal_rate()
        )?;
        writeln!(
            f,
            "after syntax filter      : {:>10}",
            self.after_syntax_filter
        )?;
        writeln!(
            f,
            "after copyright filter   : {:>10}  ({:.2}% removed)",
            self.after_copyright_filter,
            100.0 * self.copyright_removal_rate()
        )?;
        write!(
            f,
            "overall survival         : {:>9.1}%",
            100.0 * self.overall_survival_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like() -> FunnelStats {
        FunnelStats {
            initial: 1_300_000,
            after_license_filter: 608_180,
            after_length_filter: 608_180,
            after_dedup: 228_068,
            after_syntax_filter: 224_700,
            after_copyright_filter: 222_624,
        }
    }

    #[test]
    fn rates_match_paper_figures() {
        let f = paper_like();
        assert!((f.license_survival_rate() - 0.468).abs() < 0.01);
        assert!((f.dedup_removal_rate() - 0.625).abs() < 0.01);
        assert!(f.copyright_removal_rate() < 0.02);
        assert_eq!(f.final_count(), 222_624);
    }

    #[test]
    fn removals_sum_to_total_loss() {
        let f = paper_like();
        let removed: usize = f.removals().iter().map(|(_, n)| n).sum();
        assert_eq!(removed, f.initial - f.final_count());
    }

    #[test]
    fn empty_funnel_has_zero_rates() {
        let f = FunnelStats::default();
        assert_eq!(f.license_survival_rate(), 0.0);
        assert_eq!(f.dedup_removal_rate(), 0.0);
        assert_eq!(f.overall_survival_rate(), 0.0);
    }

    #[test]
    fn display_mentions_every_stage() {
        let text = paper_like().to_string();
        for needle in ["license", "de-duplication", "syntax", "copyright", "overall"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
