//! Stage-by-stage dataset funnel statistics (§IV-A), keyed by stage name.
//!
//! The paper reports how each curation stage shrinks the corpus: 1.3 million
//! extracted files, 608 180 after the license filter, 62.5 % removed by LSH
//! de-duplication, and a final dataset of 222 624 files after the syntax and
//! copyright checks. [`FunnelStats`] captures the same funnel for a pipeline
//! run as an ordered list of per-stage counts, one entry per executed
//! [`crate::CurationStage`] — so custom policies with extra or missing stages
//! report a funnel of exactly the stages they ran, while the paper-shape
//! accessors ([`FunnelStats::license_survival_rate`] and friends) keep
//! working off the canonical stage names.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::stage::stage_names;

/// One executed stage's contribution to the funnel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCount {
    /// The stage's name (see [`stage_names`] for the canonical set).
    pub stage: String,
    /// Files entering the stage.
    pub entering: usize,
    /// Files surviving the stage.
    pub surviving: usize,
    /// Per-category removal counts, sorted by category name — e.g. the lint
    /// stage's per-rule reject counts, keyed by kebab-case rule id. Empty
    /// for stages that do not categorise their rejections.
    pub categories: Vec<(String, usize)>,
}

impl StageCount {
    /// Files the stage removed.
    pub fn removed(&self) -> usize {
        self.entering.saturating_sub(self.surviving)
    }

    /// Files removed under a named category (0 when the stage recorded no
    /// such category).
    pub fn removed_in_category(&self, category: &str) -> usize {
        self.categories
            .iter()
            .find(|(name, _)| name == category)
            .map_or(0, |(_, count)| *count)
    }

    /// Fraction of the stage's input that survived (1.0 for an empty input).
    pub fn survival_rate(&self) -> f64 {
        if self.entering == 0 {
            1.0
        } else {
            self.surviving as f64 / self.entering as f64
        }
    }

    /// Fraction of the stage's input that was removed.
    pub fn removal_rate(&self) -> f64 {
        1.0 - self.survival_rate()
    }
}

/// Ordered, stage-name-keyed counts of surviving files through a curation
/// run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FunnelStats {
    initial: usize,
    stages: Vec<StageCount>,
}

impl FunnelStats {
    /// Starts a funnel for a corpus of `initial` files.
    pub fn new(initial: usize) -> Self {
        Self {
            initial,
            stages: Vec::new(),
        }
    }

    /// Builds a funnel from `(stage, surviving)` pairs (each stage's input is
    /// the previous stage's survivors) — used for paper-reference funnels.
    pub fn from_counts(initial: usize, counts: &[(&str, usize)]) -> Self {
        let mut funnel = Self::new(initial);
        for &(stage, surviving) in counts {
            funnel.record(stage, surviving);
        }
        funnel
    }

    /// Records a stage's survivor count. The stage's input count is the
    /// previous stage's survivor count (or the initial size).
    pub fn record(&mut self, stage: &str, surviving: usize) {
        self.record_with_categories(stage, surviving, Vec::new());
    }

    /// Records a stage's survivor count together with per-category removal
    /// counts (see [`StageCount::categories`]). Categories are stored
    /// sorted by name so funnels compare bytewise regardless of the order
    /// rejections were tallied in.
    pub fn record_with_categories(
        &mut self,
        stage: &str,
        surviving: usize,
        mut categories: Vec<(String, usize)>,
    ) {
        let entering = self.final_count();
        categories.sort();
        self.stages.push(StageCount {
            stage: stage.to_string(),
            entering,
            surviving,
            categories,
        });
    }

    /// Files entering the pipeline (the raw scrape).
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The per-stage counts, in execution order.
    pub fn stages(&self) -> &[StageCount] {
        &self.stages
    }

    /// The count for a named stage, if that stage ran.
    pub fn stage(&self, name: &str) -> Option<&StageCount> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Files surviving the named stage; when the stage did not run, the
    /// pipeline's final count (use [`Self::stage`] to distinguish "stage
    /// removed nothing" from "stage never ran").
    pub fn after(&self, name: &str) -> usize {
        self.stage(name)
            .map_or_else(|| self.final_count(), |s| s.surviving)
    }

    /// The final dataset size: survivors of the last stage (or the initial
    /// count when no stage ran).
    pub fn final_count(&self) -> usize {
        self.stages.last().map_or(self.initial, |s| s.surviving)
    }

    /// Whether survivor counts never increase stage over stage — the
    /// invariant every filter-only pipeline satisfies.
    pub fn is_monotone(&self) -> bool {
        let mut previous = self.initial;
        for stage in &self.stages {
            if stage.entering != previous || stage.surviving > stage.entering {
                return false;
            }
            previous = stage.surviving;
        }
        true
    }

    /// Fraction of the initial corpus that survived the license filter
    /// (paper: ~46.8 %). 1.0 when the policy ran no license stage (nothing
    /// was licensed away), 0.0 for an empty corpus.
    pub fn license_survival_rate(&self) -> f64 {
        if self.initial == 0 {
            return 0.0;
        }
        match self.stage(stage_names::LICENSE) {
            Some(stage) => stage.surviving as f64 / self.initial as f64,
            None => 1.0,
        }
    }

    /// Fraction of the de-duplication *input* removed as duplicates (the
    /// paper reports 62.5 %). 0.0 when the policy ran no dedup stage.
    pub fn dedup_removal_rate(&self) -> f64 {
        self.stage(stage_names::DEDUP)
            .map_or(0.0, StageCount::removal_rate)
    }

    /// Fraction of the copyright stage's input removed (the paper reports
    /// roughly 1 % of the original corpus; ~2k of ~228k deduplicated files).
    /// 0.0 when the policy ran no copyright stage.
    pub fn copyright_removal_rate(&self) -> f64 {
        self.stage(stage_names::COPYRIGHT)
            .map_or(0.0, StageCount::removal_rate)
    }

    /// Fraction of the initial corpus that made it into the final dataset.
    pub fn overall_survival_rate(&self) -> f64 {
        if self.initial == 0 {
            0.0
        } else {
            self.final_count() as f64 / self.initial as f64
        }
    }

    /// Files removed by each executed stage, as `(stage, removed)` rows.
    pub fn removals(&self) -> Vec<(&str, usize)> {
        self.stages
            .iter()
            .map(|s| (s.stage.as_str(), s.removed()))
            .collect()
    }
}

impl fmt::Display for FunnelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "extracted files          : {:>10}", self.initial)?;
        for stage in &self.stages {
            writeln!(
                f,
                "after {:<18} : {:>10}  ({:.1}% removed)",
                stage.stage,
                stage.surviving,
                100.0 * stage.removal_rate()
            )?;
        }
        write!(
            f,
            "overall survival         : {:>9.1}%",
            100.0 * self.overall_survival_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like() -> FunnelStats {
        FunnelStats::from_counts(
            1_300_000,
            &[
                (stage_names::LICENSE, 608_180),
                (stage_names::LENGTH, 608_180),
                (stage_names::DEDUP, 228_068),
                (stage_names::SYNTAX, 224_700),
                (stage_names::COPYRIGHT, 222_624),
            ],
        )
    }

    #[test]
    fn rates_match_paper_figures() {
        let f = paper_like();
        assert!((f.license_survival_rate() - 0.468).abs() < 0.01);
        assert!((f.dedup_removal_rate() - 0.625).abs() < 0.01);
        assert!(f.copyright_removal_rate() < 0.02);
        assert_eq!(f.final_count(), 222_624);
        assert!(f.is_monotone());
    }

    #[test]
    fn removals_sum_to_total_loss() {
        let f = paper_like();
        let removed: usize = f.removals().iter().map(|(_, n)| n).sum();
        assert_eq!(removed, f.initial() - f.final_count());
    }

    #[test]
    fn stage_lookup_is_by_name() {
        let f = paper_like();
        assert_eq!(f.after(stage_names::DEDUP), 228_068);
        assert_eq!(f.stage(stage_names::DEDUP).unwrap().entering, 608_180);
        assert!(f.stage("no such stage").is_none());
        // A stage that did not run removes nothing.
        assert_eq!(f.after("no such stage"), f.final_count());
    }

    #[test]
    fn missing_stages_have_neutral_rates() {
        let f = FunnelStats::from_counts(100, &[(stage_names::SYNTAX, 90)]);
        assert_eq!(f.dedup_removal_rate(), 0.0);
        assert_eq!(f.copyright_removal_rate(), 0.0);
        // No license stage ran, so nothing was licensed away — the syntax
        // stage's removals must not be misattributed to it.
        assert_eq!(f.license_survival_rate(), 1.0);
        assert_eq!(f.final_count(), 90);
    }

    #[test]
    fn empty_funnel_has_zero_rates() {
        let f = FunnelStats::default();
        assert_eq!(f.license_survival_rate(), 0.0);
        assert_eq!(f.dedup_removal_rate(), 0.0);
        assert_eq!(f.overall_survival_rate(), 0.0);
        assert_eq!(f.final_count(), 0);
        assert!(f.is_monotone());
    }

    #[test]
    fn non_monotone_funnels_are_detected() {
        let grown = FunnelStats::from_counts(10, &[("augmenter", 15)]);
        assert!(!grown.is_monotone());
    }

    #[test]
    fn display_mentions_every_stage() {
        let text = paper_like().to_string();
        for needle in ["license", "deduplication", "syntax", "copyright", "overall"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
