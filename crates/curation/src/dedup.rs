//! MinHash + LSH near-duplicate removal (§III-D2).
//!
//! Following VeriGen's procedure as described in the paper, every file is
//! reduced to a MinHash signature of its shingle set, locality-sensitive
//! hashing retrieves previously-kept files that may be similar, and a file
//! is discarded when its similarity with any kept file reaches the 0.85
//! threshold. Candidates are verified with exact Jaccard similarity so LSH
//! false positives cannot evict distinct files.
//!
//! Two entry points share one engine. [`Deduplicator`] is the one-shot API:
//! hand it a complete bank, get the kept/removed partition back.
//! [`StreamingDeduplicator`] is the incremental engine underneath: batches
//! are pushed as they arrive (e.g. straight off the concurrent scraper) and
//! resolved against the persistent kept-index immediately, so the corpus
//! never has to be buffered.
//!
//! Two mechanisms bound the engine's cost by *policy* rather than corpus
//! size:
//!
//! * **Exact-hash pre-dedup** (on by default, [`DedupConfig::exact_prededup`]):
//!   every file's shingle-normalized content (comment-stripped, exactly the
//!   text the shingles are built from) is fingerprinted, and a repeat of
//!   previously seen content short-circuits to the first occurrence's
//!   resolution *before* any shingling or MinHash work — real scraped
//!   corpora are full of byte-identical forks, and signature construction
//!   is the dominant cost. The short-circuit is output-invariant: identical
//!   content ⇒ identical shingle set ⇒ identical signature ⇒ the sequential
//!   resolution reaches the very same verdict (pinned by the property
//!   tests). Repeats are recognised by a 128-bit fingerprint plus length
//!   ([`ContentFingerprint`]), so a false match is astronomically unlikely
//!   rather than impossible.
//! * **Per-shard spill-to-disk** ([`DedupSpillConfig`]): the kept state —
//!   LSH buckets *and* kept shingle vectors — is partitioned into the
//!   [`ShardedLshIndex`]'s shards (a kept document is homed to shard
//!   `slot % shards`), and at most `resident_shards` of them are held in
//!   memory; the rest live in per-shard spill files. Queries and insertions
//!   walk bands one shard at a time, reloading on touch with
//!   LRU-by-last-touch eviction, so peak kept-state residency tracks the
//!   budget plus the batch in flight instead of the kept set — and the
//!   output stays byte-identical to the fully resident engine for any
//!   shard count and any budget ≥ 1.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use gh_sim::ExtractedFile;
use serde::{Deserialize, Serialize};
use textsim::{
    char_shingles, jaccard_similarity_sorted, read_u64_le, write_u64_le, CandidateScratch,
    InsertOrMatch, LshParams, MinHasher, ShardedLshIndex, ShingleSet, Signature,
    DEFAULT_LSH_SHARDS,
};

use crate::stage::ExecutionMode;

/// Configuration of the de-duplicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedupConfig {
    /// Jaccard similarity at or above which a file counts as a duplicate.
    pub similarity_threshold: f64,
    /// Character shingle size.
    pub shingle_size: usize,
    /// Number of MinHash permutations.
    pub permutations: usize,
    /// Seed for the MinHash permutation family.
    pub seed: u64,
    /// Short-circuit repeats of already-seen (comment-stripped) content to
    /// the first occurrence's resolution before building shingles or MinHash
    /// signatures. Output-invariant; disable only to benchmark the full
    /// signature path.
    pub exact_prededup: bool,
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self {
            similarity_threshold: 0.85,
            shingle_size: 8,
            permutations: 128,
            seed: 0x5EED,
            exact_prededup: true,
        }
    }
}

/// Spill-to-disk policy for a [`StreamingDeduplicator`].
///
/// The kept state is partitioned into `shards`; at most `resident_shards`
/// are held in memory, the rest serialized into per-shard files under a
/// private directory (removed when the engine is dropped). Smaller budgets
/// trade reload traffic for a lower memory ceiling; the kept/removed outcome
/// is byte-identical whatever the budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedupSpillConfig {
    /// Number of shards the kept state (LSH buckets + kept shingle vectors)
    /// is partitioned into.
    pub shards: usize,
    /// Maximum number of shards resident in memory at once (≥ 1).
    pub resident_shards: usize,
    /// Parent directory for the engine's private spill directory; `None`
    /// uses the system temp dir. Each engine creates (and on drop removes)
    /// its own unique subdirectory, so engines never collide.
    pub spill_dir: Option<String>,
}

impl Default for DedupSpillConfig {
    fn default() -> Self {
        Self {
            shards: DEFAULT_LSH_SHARDS,
            resident_shards: 4,
            spill_dir: None,
        }
    }
}

/// The result of de-duplicating a file bank.
///
/// Indices refer to the de-duplicator's input order: for a one-shot
/// [`Deduplicator`] call that is the input slice; for a
/// [`StreamingDeduplicator`] they are *global* positions across every batch
/// pushed so far (so a later batch's duplicate can point back at a file kept
/// from an earlier batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DedupOutcome {
    /// Indices (into the input order) of the files that were kept.
    pub kept: Vec<usize>,
    /// `(dropped_index, kept_index_it_duplicates, similarity)` for removals.
    pub removed: Vec<(usize, usize, f64)>,
}

impl DedupOutcome {
    /// Fraction of the input that was removed.
    pub fn removal_rate(&self) -> f64 {
        let total = self.kept.len() + self.removed.len();
        if total == 0 {
            0.0
        } else {
            self.removed.len() as f64 / total as f64
        }
    }
}

/// MinHash/LSH de-duplicator.
///
/// # Example
///
/// ```
/// use curation::{DedupConfig, Deduplicator};
///
/// let dedup = Deduplicator::new(DedupConfig::default());
/// let docs = vec![
///     "module a(input x, output y); assign y = ~x; endmodule".to_string(),
///     "module a(input x, output y); assign y = ~x; endmodule".to_string(),
///     "module fifo(input clk, input rst); reg [7:0] mem [0:15]; endmodule".to_string(),
/// ];
/// let outcome = dedup.dedup_texts(&docs);
/// assert_eq!(outcome.kept.len(), 2);
/// assert_eq!(outcome.removed.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Deduplicator {
    config: DedupConfig,
    hasher: MinHasher,
    lsh_params: LshParams,
}

impl Deduplicator {
    /// Creates a de-duplicator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero permutations or a threshold
    /// outside `(0, 1)`.
    pub fn new(config: DedupConfig) -> Self {
        let hasher = MinHasher::new(config.permutations, config.seed);
        let lsh_params = LshParams::for_threshold(config.permutations, config.similarity_threshold);
        Self {
            config,
            hasher,
            lsh_params,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DedupConfig {
        self.config
    }

    /// Opens a stateful streaming engine with this de-duplicator's
    /// configuration (sharing its already-built permutation family).
    pub fn streaming(&self) -> StreamingDeduplicator {
        StreamingDeduplicator::from_parts(self.config, self.hasher.clone(), self.lsh_params, None)
            .expect("in-memory streaming engine performs no IO")
    }

    /// Opens a streaming engine whose kept state spills to disk under the
    /// given policy. Output is byte-identical to [`Self::streaming`] for any
    /// shard count and resident budget.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error if the spill directory cannot be
    /// created or the initial shard eviction cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the policy requests zero shards or a zero resident budget.
    pub fn streaming_with_spill(
        &self,
        spill: &DedupSpillConfig,
    ) -> io::Result<StreamingDeduplicator> {
        StreamingDeduplicator::from_parts(
            self.config,
            self.hasher.clone(),
            self.lsh_params,
            Some(spill),
        )
    }

    /// De-duplicates a slice of raw texts, keeping the first occurrence of
    /// each near-duplicate group. Runs single-threaded; see
    /// [`Self::dedup_texts_with_mode`] for the parallel variant.
    pub fn dedup_texts<S: AsRef<str> + Sync>(&self, texts: &[S]) -> DedupOutcome {
        self.dedup_texts_with_mode(texts, ExecutionMode::Serial)
    }

    /// De-duplicates a slice of raw texts with the given execution mode — a
    /// single-push [`StreamingDeduplicator`], so the one-shot and streamed
    /// paths cannot diverge.
    ///
    /// The keep/drop loop is inherently sequential (a file is compared
    /// against previously *kept* files), but shingling and signature
    /// construction — the dominant cost — are embarrassingly parallel:
    /// parallel mode computes them for the whole batch up front (order
    /// stable), while serial mode streams them per file so its peak memory
    /// stays proportional to the *kept* set. The outcome is identical in
    /// both modes.
    pub fn dedup_texts_with_mode<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        mode: ExecutionMode,
    ) -> DedupOutcome {
        self.streaming()
            .push_texts_with_mode(texts, mode)
            .expect("in-memory dedup performs no IO")
    }

    /// De-duplicates extracted files by their content with the given
    /// execution mode, returning the kept files (first occurrence wins) and
    /// the outcome.
    pub fn dedup_files(
        &self,
        files: Vec<ExtractedFile>,
        mode: ExecutionMode,
    ) -> (Vec<ExtractedFile>, DedupOutcome) {
        let outcome = self.dedup_texts_with_mode(
            &files
                .iter()
                .map(|f| f.content.as_str())
                .collect::<Vec<&str>>(),
            mode,
        );
        let keep: std::collections::HashSet<usize> = outcome.kept.iter().copied().collect();
        let kept_files = files
            .into_iter()
            .enumerate()
            .filter_map(|(i, f)| keep.contains(&i).then_some(f))
            .collect();
        (kept_files, outcome)
    }
}

/// Residency statistics of a [`StreamingDeduplicator`] — what the engine is
/// actually holding and how hard each bounding mechanism is working, so
/// benchmarks (and capacity planning) can verify that memory tracks the
/// spill budget instead of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamingDedupStats {
    /// Total documents pushed so far.
    pub pushed: usize,
    /// Documents short-circuited by the exact-hash table without building
    /// shingles or a signature.
    pub exact_hits: usize,
    /// Documents currently kept.
    pub kept_docs: usize,
    /// Total shingle hashes stored for the kept documents — the dominant
    /// kept-state term, one `u64` per hash (resident or spilled).
    pub kept_hashes: usize,
    /// Total shingle hashes across every *signature-built* document (exact
    /// hits never materialise shingles) — what a corpus-buffering
    /// implementation without the exact-hash fast path would have had to
    /// construct and hold at once.
    pub pushed_hashes: usize,
    /// Shingle hashes built for the largest single push — the batch-shaped
    /// transient working-set bound, identical in both execution modes
    /// (serial mode actually materialises only one file of it at a time).
    pub peak_batch_hashes: usize,
    /// Shards currently resident in memory (equals the shard count when
    /// spilling is disabled).
    pub resident_shards: usize,
    /// Most shards ever resident at once — stays at or under the configured
    /// budget when spilling is enabled.
    pub peak_resident_shards: usize,
    /// Kept shingle hashes currently resident in memory.
    pub resident_kept_hashes: usize,
    /// Most kept shingle hashes ever resident at once — the bounded-memory
    /// headline: with a spill budget this stays well under `kept_hashes`.
    pub peak_resident_kept_hashes: usize,
    /// Shard spill (serialize + write) events.
    pub shard_spills: usize,
    /// Shard reload (read + restore) events.
    pub shard_reloads: usize,
}

/// Exact-table key: a 128-bit fingerprint (two independent 64-bit mixes
/// over the same byte stream) plus the content length. A single 64-bit hash
/// would make an accidental collision — which silently drops a unique
/// document — reachable at very large corpus scales and constructible for
/// adversarial inputs; with 128 bits + length the birthday bound is ~2⁶⁴
/// *distinct contents*, negligible at any realistic scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ContentFingerprint {
    fnv: u64,
    mix: u64,
    len: u64,
}

/// Fingerprint of normalized content, for the exact-hash table.
fn content_fingerprint(bytes: &[u8]) -> ContentFingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut fnv = OFFSET;
    // A structurally different second mix (rotate-xor-multiply), so the two
    // lanes do not collide together.
    let mut mix: u64 = 0x243f_6a88_85a3_08d3;
    for &b in bytes {
        fnv ^= u64::from(b);
        fnv = fnv.wrapping_mul(PRIME);
        mix = (mix.rotate_left(13) ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    ContentFingerprint {
        fnv,
        mix,
        len: bytes.len() as u64,
    }
}

/// How the first occurrence of a piece of content resolved — replayed for
/// every later byte-identical repeat. Caching the *resolution* (not just
/// kept content) is exact: an identical document has an identical signature,
/// retrieves a superset of the original's candidates in which every
/// lower-slot candidate already verified below threshold, so the sequential
/// first-match scan can only reach the same verdict.
#[derive(Debug, Clone, Copy)]
enum ExactSeen {
    /// First occurrence was kept at this global input index; repeats are
    /// duplicates of it at similarity 1.0.
    Kept { kept_input: usize },
    /// First occurrence was removed as a duplicate of `kept_input` at this
    /// similarity; repeats resolve identically.
    Removed { kept_input: usize, similarity: f64 },
}

/// One kept document: its global input index and compact ascending shingle
/// hashes.
type KeptDoc = (usize, Vec<u64>);

/// Where the kept shingle vectors live.
#[derive(Debug)]
enum KeptStore {
    /// Fully resident, addressed by kept slot.
    Flat(Vec<KeptDoc>),
    /// Partitioned by home shard (`slot % shards`, position `slot / shards`);
    /// `None` marks a shard spilled to disk alongside its LSH buckets.
    Sharded(Vec<Option<Vec<KeptDoc>>>),
}

/// Spill bookkeeping: the LRU clock, residency accounting and file plumbing.
#[derive(Debug)]
struct SpillBook {
    dir: PathBuf,
    budget: usize,
    clock: u64,
    last_touch: Vec<u64>,
    /// Total kept shingle hashes homed to each shard, resident or not.
    shard_kept_hashes: Vec<usize>,
    resident_kept_hashes: usize,
    peak_resident_kept_hashes: usize,
    peak_resident_shards: usize,
    spills: usize,
    reloads: usize,
}

static SPILL_DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

impl SpillBook {
    fn new(config: &DedupSpillConfig) -> io::Result<Self> {
        assert!(config.shards > 0, "spill shard count must be positive");
        assert!(
            config.resident_shards > 0,
            "resident shard budget must be positive"
        );
        let parent = config
            .spill_dir
            .as_ref()
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let dir = parent.join(format!(
            "ffh-dedup-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            budget: config.resident_shards,
            clock: 0,
            last_touch: vec![0; config.shards],
            shard_kept_hashes: vec![0; config.shards],
            resident_kept_hashes: 0,
            peak_resident_kept_hashes: 0,
            peak_resident_shards: 0,
            spills: 0,
            reloads: 0,
        })
    }

    fn shard_file(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.bin"))
    }
}

impl Drop for SpillBook {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Serializes one spilled shard: the LSH shard bytes (as produced by
/// [`ShardedLshIndex::evict_shard`]) followed by the shard's kept documents.
fn encode_shard(lsh_bytes: &[u8], docs: &[KeptDoc]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + lsh_bytes.len());
    write_u64_le(&mut out, lsh_bytes.len() as u64);
    out.extend_from_slice(lsh_bytes);
    write_u64_le(&mut out, docs.len() as u64);
    for (input_index, hashes) in docs {
        write_u64_le(&mut out, *input_index as u64);
        write_u64_le(&mut out, hashes.len() as u64);
        for h in hashes {
            write_u64_le(&mut out, *h);
        }
    }
    out
}

/// Parses the output of [`encode_shard`] back into LSH bytes + kept docs.
fn decode_shard(bytes: &[u8]) -> (Vec<u8>, Vec<KeptDoc>) {
    let mut offset = 0usize;
    let lsh_len = read_u64_le(bytes, &mut offset) as usize;
    let lsh_bytes = bytes[offset..offset + lsh_len].to_vec();
    offset += lsh_len;
    let doc_count = read_u64_le(bytes, &mut offset) as usize;
    let mut docs = Vec::with_capacity(doc_count);
    for _ in 0..doc_count {
        let input_index = read_u64_le(bytes, &mut offset) as usize;
        let hash_count = read_u64_le(bytes, &mut offset) as usize;
        let mut hashes = Vec::with_capacity(hash_count);
        for _ in 0..hash_count {
            hashes.push(read_u64_le(bytes, &mut offset));
        }
        docs.push((input_index, hashes));
    }
    assert_eq!(offset, bytes.len(), "trailing bytes in spill file");
    (lsh_bytes, docs)
}

/// Evicts `victim` — LSH buckets and kept docs — into its spill file.
fn spill_shard(
    index: &mut ShardedLshIndex,
    kept_shards: &mut [Option<Vec<KeptDoc>>],
    book: &mut SpillBook,
    victim: usize,
) -> io::Result<()> {
    let lsh_bytes = index.evict_shard(victim);
    let docs = kept_shards[victim]
        .take()
        .expect("kept shard residency out of sync with the LSH index");
    let path = book.shard_file(victim);
    std::fs::write(&path, encode_shard(&lsh_bytes, &docs))?;
    book.resident_kept_hashes -= book.shard_kept_hashes[victim];
    book.spills += 1;
    Ok(())
}

/// Makes `shard` resident, evicting least-recently-touched shards down to
/// the budget first. The reload path is the "transparent reload on candidate
/// hit": callers just touch the shard they are about to read.
fn ensure_resident(
    index: &mut ShardedLshIndex,
    kept_shards: &mut [Option<Vec<KeptDoc>>],
    book: &mut SpillBook,
    shard: usize,
) -> io::Result<()> {
    book.clock += 1;
    book.last_touch[shard] = book.clock;
    if index.shard_is_resident(shard) {
        return Ok(());
    }
    while index.resident_shard_count() >= book.budget {
        let victim = (0..index.shard_count())
            .filter(|&s| s != shard && index.shard_is_resident(s))
            .min_by_key(|&s| book.last_touch[s])
            .expect("budget overflow with no evictable shard");
        spill_shard(index, kept_shards, book, victim)?;
    }
    let bytes = std::fs::read(book.shard_file(shard))?;
    let (lsh_bytes, docs) = decode_shard(&bytes);
    index.restore_shard(shard, &lsh_bytes);
    book.resident_kept_hashes += book.shard_kept_hashes[shard];
    book.peak_resident_kept_hashes = book
        .peak_resident_kept_hashes
        .max(book.resident_kept_hashes);
    kept_shards[shard] = Some(docs);
    book.reloads += 1;
    book.peak_resident_shards = book.peak_resident_shards.max(index.resident_shard_count());
    Ok(())
}

/// The verdict of resolving one document against the kept set.
enum Resolution {
    Kept,
    Duplicate { kept_input: usize, similarity: f64 },
}

/// The incremental MinHash/LSH de-duplication engine.
///
/// Batches are pushed in arrival order; each document is resolved against
/// the persistent kept-index immediately (exact-hash short-circuit first,
/// then LSH candidates from a [`ShardedLshIndex`] verified with exact
/// Jaccard) and either recorded as a duplicate of an earlier *kept* document
/// or inserted as newly kept. Pushing batches b₁…bₙ yields exactly the
/// outcomes of one-shot de-duplication over b₁ ⧺ … ⧺ bₙ, split along the
/// same boundaries — the one-shot [`Deduplicator`] API is literally a
/// single-push stream.
///
/// Kept shingle sets are stored as compact ascending `Vec<u64>`s (verified
/// with [`jaccard_similarity_sorted`]) and candidate retrieval reuses one
/// [`CandidateScratch`], so steady-state memory is the kept documents plus
/// the batch in flight — or, with a [`DedupSpillConfig`], the resident-shard
/// budget plus the batch in flight.
///
/// # Example
///
/// ```
/// use curation::{DedupConfig, Deduplicator, ExecutionMode};
///
/// let dedup = Deduplicator::new(DedupConfig::default());
/// let mut stream = dedup.streaming();
/// let first = stream.push_texts(&["module a(input x); assign y = ~x; endmodule"])?;
/// assert_eq!(first.kept, vec![0]);
/// // The duplicate arrives in a later batch but still points back at the
/// // kept file's global index.
/// let second = stream.push_texts(&["module a(input x); assign y = ~x; endmodule"])?;
/// assert_eq!(second.removed, vec![(1, 0, 1.0)]);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct StreamingDeduplicator {
    config: DedupConfig,
    hasher: MinHasher,
    index: ShardedLshIndex,
    kept: KeptStore,
    /// First-occurrence resolutions keyed by content fingerprint. Bounded by
    /// distinct contents seen at ~32 bytes each — three orders of magnitude
    /// lighter than the shingle sets it saves rebuilding.
    exact: HashMap<ContentFingerprint, ExactSeen>,
    scratch: CandidateScratch,
    spill: Option<SpillBook>,
    seen: usize,
    kept_docs: usize,
    kept_hashes: usize,
    pushed_hashes: usize,
    peak_batch_hashes: usize,
    exact_hits: usize,
}

impl StreamingDeduplicator {
    /// Creates a streaming engine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero permutations or a threshold
    /// outside `(0, 1)`.
    pub fn new(config: DedupConfig) -> Self {
        Deduplicator::new(config).streaming()
    }

    fn from_parts(
        config: DedupConfig,
        hasher: MinHasher,
        lsh_params: LshParams,
        spill: Option<&DedupSpillConfig>,
    ) -> io::Result<Self> {
        let (index, kept, book) = match spill {
            None => (
                ShardedLshIndex::new(lsh_params),
                KeptStore::Flat(Vec::new()),
                None,
            ),
            Some(policy) => {
                let mut book = SpillBook::new(policy)?;
                let mut index = ShardedLshIndex::with_shards(lsh_params, policy.shards);
                let mut shards: Vec<Option<Vec<KeptDoc>>> = vec![Some(Vec::new()); policy.shards];
                // Trim the (empty) initial state down to the budget so peak
                // residency respects it from the first document on.
                for victim in policy.resident_shards..policy.shards {
                    spill_shard(&mut index, &mut shards, &mut book, victim)?;
                }
                book.peak_resident_shards = index.resident_shard_count();
                (index, KeptStore::Sharded(shards), Some(book))
            }
        };
        Ok(Self {
            config,
            hasher,
            index,
            kept,
            exact: HashMap::new(),
            scratch: CandidateScratch::new(),
            spill: book,
            seen: 0,
            kept_docs: 0,
            kept_hashes: 0,
            pushed_hashes: 0,
            peak_batch_hashes: 0,
            exact_hits: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> DedupConfig {
        self.config
    }

    /// Total documents pushed so far (the next document's global index).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Number of documents currently kept.
    pub fn kept_len(&self) -> usize {
        self.kept_docs
    }

    /// Current residency statistics.
    pub fn stats(&self) -> StreamingDedupStats {
        let (
            resident_shards,
            peak_resident_shards,
            resident_kept_hashes,
            peak_resident_kept_hashes,
            shard_spills,
            shard_reloads,
        ) = match &self.spill {
            None => (
                self.index.shard_count(),
                self.index.shard_count(),
                self.kept_hashes,
                self.kept_hashes,
                0,
                0,
            ),
            Some(book) => (
                self.index.resident_shard_count(),
                book.peak_resident_shards,
                book.resident_kept_hashes,
                book.peak_resident_kept_hashes,
                book.spills,
                book.reloads,
            ),
        };
        StreamingDedupStats {
            pushed: self.seen,
            exact_hits: self.exact_hits,
            kept_docs: self.kept_docs,
            kept_hashes: self.kept_hashes,
            pushed_hashes: self.pushed_hashes,
            peak_batch_hashes: self.peak_batch_hashes,
            resident_shards,
            peak_resident_shards,
            resident_kept_hashes,
            peak_resident_kept_hashes,
            shard_spills,
            shard_reloads,
        }
    }

    /// Per-shard occupied-bucket counts of the underlying LSH index
    /// (maintained across spills).
    pub fn shard_bucket_counts(&self) -> Vec<usize> {
        self.index.shard_bucket_counts()
    }

    /// Pushes one batch single-threaded; see
    /// [`Self::push_texts_with_mode`].
    pub fn push_texts<S: AsRef<str> + Sync>(&mut self, texts: &[S]) -> io::Result<DedupOutcome> {
        self.push_texts_with_mode(texts, ExecutionMode::Serial)
    }

    /// Pushes one batch of raw texts through the engine, resolving each
    /// against everything kept so far. Returned indices are global (across
    /// all pushes); parallel mode fans the batch's comment-stripping and
    /// shingle/signature construction across threads with order-stable
    /// results, so both modes produce identical outcomes. Only the first
    /// occurrence of each distinct content builds a signature — repeats are
    /// short-circuited by the exact-hash table in both modes.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error when a spill-backed engine fails to
    /// write or read a shard file. A fully resident engine never errors.
    /// After an error the engine's residency bookkeeping may be out of sync
    /// with its spill files; discard it rather than pushing further batches.
    pub fn push_texts_with_mode<S: AsRef<str> + Sync>(
        &mut self,
        texts: &[S],
        mode: ExecutionMode,
    ) -> io::Result<DedupOutcome> {
        let mut outcome = DedupOutcome::default();
        let mut batch_hashes = 0usize;
        match mode {
            ExecutionMode::Serial => {
                for text in texts {
                    let code = verilog::strip_comments(text.as_ref());
                    let fingerprint = content_fingerprint(code.as_bytes());
                    if self.config.exact_prededup {
                        if let Some(&seen) = self.exact.get(&fingerprint) {
                            self.record_exact(seen, &mut outcome);
                            continue;
                        }
                    }
                    let shingles = char_shingles(&code, self.config.shingle_size);
                    let signature = self.hasher.signature(&shingles);
                    batch_hashes += shingles.len();
                    self.resolve(fingerprint, shingles, signature, &mut outcome)?;
                }
            }
            ExecutionMode::Parallel => {
                use rayon::prelude::*;
                let stripped: Vec<String> = texts
                    .par_iter()
                    .map(|t| verilog::strip_comments(t.as_ref()))
                    .collect();
                let fingerprints: Vec<ContentFingerprint> = stripped
                    .iter()
                    .map(|code| content_fingerprint(code.as_bytes()))
                    .collect();
                // Only the first in-batch occurrence of content the exact
                // table has not seen builds shingles and a signature — the
                // same set of documents the serial path would build for.
                let mut batch_first = std::collections::HashSet::new();
                let build: Vec<bool> = fingerprints
                    .iter()
                    .map(|&fp| {
                        !self.config.exact_prededup
                            || (!self.exact.contains_key(&fp) && batch_first.insert(fp))
                    })
                    .collect();
                let build_texts: Vec<&str> = stripped
                    .iter()
                    .zip(&build)
                    .filter_map(|(code, &b)| b.then_some(code.as_str()))
                    .collect();
                let size = self.config.shingle_size;
                let shingles: Vec<ShingleSet> = build_texts
                    .par_iter()
                    .map(|code| char_shingles(code, size))
                    .collect();
                let signatures = self.hasher.par_signatures(&shingles);
                batch_hashes = shingles.iter().map(ShingleSet::len).sum();
                let mut built = shingles.into_iter().zip(signatures);
                for (i, &fingerprint) in fingerprints.iter().enumerate() {
                    if build[i] {
                        let (set, signature) = built.next().expect("one build per flagged doc");
                        self.resolve(fingerprint, set, signature, &mut outcome)?;
                    } else {
                        // Either pre-seen or a repeat of an earlier in-batch
                        // first occurrence, which resolve() has recorded by
                        // now — the exact table must hit.
                        let seen = *self
                            .exact
                            .get(&fingerprint)
                            .expect("pre-scanned exact repeat missing from the table");
                        self.record_exact(seen, &mut outcome);
                    }
                }
            }
        }
        self.pushed_hashes += batch_hashes;
        self.peak_batch_hashes = self.peak_batch_hashes.max(batch_hashes);
        Ok(outcome)
    }

    /// Replays the first occurrence's resolution for an exact repeat.
    fn record_exact(&mut self, seen: ExactSeen, outcome: &mut DedupOutcome) {
        let input_index = self.seen;
        self.seen += 1;
        self.exact_hits += 1;
        match seen {
            ExactSeen::Kept { kept_input } => outcome.removed.push((input_index, kept_input, 1.0)),
            ExactSeen::Removed {
                kept_input,
                similarity,
            } => outcome.removed.push((input_index, kept_input, similarity)),
        }
    }

    /// The sequential first-occurrence-wins resolution of one document.
    fn resolve(
        &mut self,
        fingerprint: ContentFingerprint,
        shingles: ShingleSet,
        signature: Signature,
        outcome: &mut DedupOutcome,
    ) -> io::Result<()> {
        let input_index = self.seen;
        self.seen += 1;
        let hashes: Vec<u64> = shingles.iter().collect();
        let hash_count = hashes.len();
        let resolution = if self.spill.is_some() {
            self.resolve_sharded(input_index, hashes, &signature)?
        } else {
            self.resolve_flat(input_index, hashes, &signature)
        };
        match resolution {
            Resolution::Duplicate {
                kept_input,
                similarity,
            } => {
                outcome.removed.push((input_index, kept_input, similarity));
                if self.config.exact_prededup {
                    self.exact.entry(fingerprint).or_insert(ExactSeen::Removed {
                        kept_input,
                        similarity,
                    });
                }
            }
            Resolution::Kept => {
                self.kept_docs += 1;
                self.kept_hashes += hash_count;
                outcome.kept.push(input_index);
                if self.config.exact_prededup {
                    self.exact.entry(fingerprint).or_insert(ExactSeen::Kept {
                        kept_input: input_index,
                    });
                }
            }
        }
        Ok(())
    }

    /// Fully-resident resolution: one [`ShardedLshIndex::insert_or_match`]
    /// call against the flat kept store.
    fn resolve_flat(
        &mut self,
        input_index: usize,
        hashes: Vec<u64>,
        signature: &Signature,
    ) -> Resolution {
        let threshold = self.config.similarity_threshold;
        let KeptStore::Flat(kept) = &self.kept else {
            unreachable!("flat resolve with a sharded kept store");
        };
        let verdict = self.index.insert_or_match(
            kept.len() as u64,
            signature,
            &mut self.scratch,
            |candidate| {
                let (_, kept_hashes) = &kept[candidate as usize];
                let similarity = jaccard_similarity_sorted(&hashes, kept_hashes);
                (similarity >= threshold).then_some(similarity)
            },
        );
        match verdict {
            InsertOrMatch::Matched(slot, similarity) => {
                let KeptStore::Flat(kept) = &self.kept else {
                    unreachable!();
                };
                Resolution::Duplicate {
                    kept_input: kept[slot as usize].0,
                    similarity,
                }
            }
            InsertOrMatch::Inserted => {
                let KeptStore::Flat(kept) = &mut self.kept else {
                    unreachable!();
                };
                kept.push((input_index, hashes));
                Resolution::Kept
            }
        }
    }

    /// Spill-aware resolution: walk bands one shard at a time (reloading on
    /// touch), verify candidates in ascending slot order, and home a newly
    /// kept document to shard `slot % shards`. Byte-identical to
    /// [`Self::resolve_flat`] — same candidate set, same scan order, same
    /// verdicts — for any shard count and any budget.
    fn resolve_sharded(
        &mut self,
        input_index: usize,
        hashes: Vec<u64>,
        signature: &Signature,
    ) -> io::Result<Resolution> {
        let slot = self.kept_docs;
        let bands = self.index.params().bands;
        let shard_count = self.index.shard_count();
        let threshold = self.config.similarity_threshold;
        let mut scratch = std::mem::take(&mut self.scratch);
        // The fallible body runs in a closure so the scratch buffer is
        // restored on the error path too (the engine stays droppable).
        let resolution = (|| {
            let index = &mut self.index;
            let KeptStore::Sharded(kept_shards) = &mut self.kept else {
                unreachable!("sharded resolve with a flat kept store");
            };
            let book = self.spill.as_mut().expect("sharded resolve without spill");
            scratch.begin();
            for band in 0..bands {
                let shard = index.shard_for_band(signature, band);
                ensure_resident(index, kept_shards, book, shard)?;
                index.collect_band(signature, band, &mut scratch);
            }
            scratch.finish();
            let mut matched = None;
            for &candidate in scratch.candidates() {
                let home = candidate as usize % shard_count;
                ensure_resident(index, kept_shards, book, home)?;
                let (kept_input, kept_hashes) = &kept_shards[home]
                    .as_ref()
                    .expect("just made resident")[candidate as usize / shard_count];
                let similarity = jaccard_similarity_sorted(&hashes, kept_hashes);
                if similarity >= threshold {
                    matched = Some(Resolution::Duplicate {
                        kept_input: *kept_input,
                        similarity,
                    });
                    break;
                }
            }
            match matched {
                Some(resolution) => Ok(resolution),
                None => {
                    for band in 0..bands {
                        let shard = index.shard_for_band(signature, band);
                        ensure_resident(index, kept_shards, book, shard)?;
                        index.insert_band(slot as u64, signature, band);
                    }
                    index.commit_insert();
                    let home = slot % shard_count;
                    ensure_resident(index, kept_shards, book, home)?;
                    let hash_count = hashes.len();
                    kept_shards[home]
                        .as_mut()
                        .expect("just made resident")
                        .push((input_index, hashes));
                    book.shard_kept_hashes[home] += hash_count;
                    book.resident_kept_hashes += hash_count;
                    book.peak_resident_kept_hashes = book
                        .peak_resident_kept_hashes
                        .max(book.resident_kept_hashes);
                    Ok(Resolution::Kept)
                }
            }
        })();
        self.scratch = scratch;
        resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct_docs() -> Vec<String> {
        vec![
            "module alu(input [3:0] a, input [3:0] b, input [1:0] op, output reg [3:0] y);\n\
             always @* case (op) 2'd0: y = a + b; 2'd1: y = a - b; 2'd2: y = a & b; default: y = a | b; endcase endmodule"
                .to_string(),
            "module fifo(input clk, input rst, input wr, input rd, input [7:0] din, output [7:0] dout);\n\
             reg [7:0] mem [0:15]; reg [4:0] wp, rp; assign dout = mem[rp[3:0]]; endmodule"
                .to_string(),
            "module uart_tx(input clk, input start, input [7:0] data, output reg txd);\n\
             reg [3:0] state; always @(posedge clk) if (start) state <= 1; endmodule"
                .to_string(),
        ]
    }

    #[test]
    fn exact_duplicates_are_removed() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let mut docs = distinct_docs();
        docs.push(docs[0].clone());
        docs.push(docs[1].clone());
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(outcome.kept.len(), 3);
        assert_eq!(outcome.removed.len(), 2);
        assert!((outcome.removal_rate() - 0.4).abs() < 1e-9);
        // The duplicates point back at the originals.
        assert!(outcome
            .removed
            .iter()
            .any(|(d, k, s)| *d == 3 && *k == 0 && *s >= 0.85));
    }

    #[test]
    fn near_duplicates_with_banner_comments_are_removed() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let base = distinct_docs()[0].clone();
        let variant =
            format!("// imported from a vendor reference design\n{base}\n// end of file\n");
        let outcome = dedup.dedup_texts(&[base, variant]);
        assert_eq!(
            outcome.kept.len(),
            1,
            "banner-comment variant should be deduplicated"
        );
    }

    #[test]
    fn distinct_designs_are_all_kept() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let outcome = dedup.dedup_texts(&distinct_docs());
        assert_eq!(outcome.kept.len(), 3);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.removal_rate(), 0.0);
    }

    #[test]
    fn first_occurrence_wins() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let dupes = vec![docs[2].clone(), docs[0].clone(), docs[2].clone()];
        let outcome = dedup.dedup_texts(&dupes);
        assert_eq!(outcome.kept, vec![0, 1]);
        assert_eq!(outcome.removed[0].0, 2);
        assert_eq!(outcome.removed[0].1, 0);
    }

    #[test]
    fn threshold_controls_aggressiveness() {
        let strict = Deduplicator::new(DedupConfig {
            similarity_threshold: 0.98,
            ..Default::default()
        });
        let loose = Deduplicator::new(DedupConfig {
            similarity_threshold: 0.30,
            ..Default::default()
        });
        let base = distinct_docs()[0].clone();
        // A moderately edited variant.
        let variant = base.replace("2'd0: y = a + b;", "2'd0: y = a + b + 1;");
        let docs = vec![base, variant];
        assert_eq!(strict.dedup_texts(&docs).kept.len(), 2);
        assert_eq!(loose.dedup_texts(&docs).kept.len(), 1);
    }

    #[test]
    fn dedup_files_preserves_metadata_of_kept_files() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let files: Vec<ExtractedFile> = docs
            .iter()
            .chain(std::iter::once(&docs[0]))
            .enumerate()
            .map(|(i, content)| ExtractedFile {
                repo_id: i as u64,
                repo_full_name: format!("owner/repo{i}"),
                owner: "owner".into(),
                repo_license: gh_sim::License::Mit,
                created_year: 2020,
                path: format!("f{i}.v"),
                content: content.clone(),
            })
            .collect();
        let (kept, outcome) = dedup.dedup_files(files, ExecutionMode::Serial);
        assert_eq!(kept.len(), 3);
        assert_eq!(outcome.removed.len(), 1);
        assert_eq!(kept[0].repo_full_name, "owner/repo0");
    }

    #[test]
    fn dedup_files_honours_the_execution_mode() {
        // Regression: dedup_files used to hardcode ExecutionMode::Serial.
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let files: Vec<ExtractedFile> = (0..30)
            .map(|i| ExtractedFile {
                repo_id: i as u64,
                repo_full_name: format!("owner/repo{i}"),
                owner: "owner".into(),
                repo_license: gh_sim::License::Mit,
                created_year: 2020,
                path: format!("f{i}.v"),
                content: docs[i % docs.len()].clone(),
            })
            .collect();
        let (kept_serial, outcome_serial) = dedup.dedup_files(files.clone(), ExecutionMode::Serial);
        let (kept_parallel, outcome_parallel) = dedup.dedup_files(files, ExecutionMode::Parallel);
        assert_eq!(kept_serial, kept_parallel);
        assert_eq!(outcome_serial, outcome_parallel);
        assert_eq!(kept_serial.len(), docs.len());
    }

    #[test]
    fn parallel_mode_is_identical_to_serial() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let many: Vec<String> = (0..60)
            .map(|i| {
                let base = &docs[i % docs.len()];
                if i % 5 == 0 {
                    base.clone() // planted duplicates
                } else {
                    format!("// file {i}\n{base}\nmodule pad_{i}(input p{i}); endmodule")
                }
            })
            .collect();
        let serial = dedup.dedup_texts_with_mode(&many, ExecutionMode::Serial);
        let parallel = dedup.dedup_texts_with_mode(&many, ExecutionMode::Parallel);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let outcome = dedup.dedup_texts::<String>(&[]);
        assert!(outcome.kept.is_empty());
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.removal_rate(), 0.0);
    }

    /// Pins the semantics of comment-only files, which shingle to the empty
    /// set after comment stripping: `jaccard(∅, ∅) == 1.0`, so the first
    /// comment-only file is kept and every later one — byte-identical or
    /// not — is removed as its duplicate. Code is what the similarity
    /// judgement is about; files with no code are all "the same nothing".
    #[test]
    fn comment_only_files_deduplicate_to_the_first() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = vec![
            "// just a banner comment\n/* and a block comment */\n".to_string(),
            "// just a banner comment\n/* and a block comment */\n".to_string(), // byte-identical
            "// an entirely different comment\n".to_string(), // different text, still no code
            distinct_docs()[0].clone(),                       // real code survives alongside
        ];
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(outcome.kept, vec![0, 3]);
        assert_eq!(outcome.removed.len(), 2);
        for &(dropped, kept, similarity) in &outcome.removed {
            assert_eq!(
                kept, 0,
                "comment-only file {dropped} must point at the first"
            );
            assert_eq!(similarity, 1.0);
        }
    }

    #[test]
    fn comment_only_files_never_absorb_real_code() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = vec!["// comment-only\n".to_string(), distinct_docs()[0].clone()];
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(
            outcome.kept,
            vec![0, 1],
            "an empty shingle set must not match non-empty code"
        );
    }

    #[test]
    fn streamed_batches_match_one_shot_for_any_split() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let many: Vec<String> = (0..48)
            .map(|i| {
                let base = &docs[i % docs.len()];
                if i % 4 == 0 {
                    base.clone()
                } else {
                    format!("// file {i}\n{base}\nmodule pad_{i}(input p{i}); endmodule")
                }
            })
            .collect();
        let one_shot = dedup.dedup_texts_with_mode(&many, ExecutionMode::Parallel);
        for batch_size in [1, 5, 16, 48, 100] {
            for mode in [ExecutionMode::Serial, ExecutionMode::Parallel] {
                let mut stream = dedup.streaming();
                let mut merged = DedupOutcome::default();
                for chunk in many.chunks(batch_size) {
                    let outcome = stream
                        .push_texts_with_mode(chunk, mode)
                        .expect("in-memory push performs no IO");
                    merged.kept.extend(outcome.kept);
                    merged.removed.extend(outcome.removed);
                }
                assert_eq!(
                    merged, one_shot,
                    "streamed outcome diverged at batch size {batch_size} in {mode:?} mode"
                );
                assert_eq!(stream.seen(), many.len());
                assert_eq!(stream.kept_len(), one_shot.kept.len());
            }
        }
    }

    #[test]
    fn exact_prededup_short_circuits_without_changing_the_outcome() {
        let docs = distinct_docs();
        // 40 files, heavy byte-identical forking plus light edits.
        let many: Vec<String> = (0..40)
            .map(|i| {
                let base = &docs[i % docs.len()];
                match i % 4 {
                    0 | 1 => base.clone(),                            // byte-identical forks
                    2 => format!("// fork banner {}\n{base}", i % 8), // strip-identical forks
                    _ => format!("{base}\nmodule pad_{i}(input p{i}); endmodule"),
                }
            })
            .collect();
        let with = Deduplicator::new(DedupConfig::default());
        let without = Deduplicator::new(DedupConfig {
            exact_prededup: false,
            ..Default::default()
        });
        for mode in [ExecutionMode::Serial, ExecutionMode::Parallel] {
            assert_eq!(
                with.dedup_texts_with_mode(&many, mode),
                without.dedup_texts_with_mode(&many, mode),
                "exact-hash fast path changed the outcome in {mode:?} mode"
            );
        }
        // The fast path actually fires, and skips signature construction:
        // it builds hashes only for first occurrences.
        let mut fast = with.streaming();
        fast.push_texts_with_mode(&many, ExecutionMode::Parallel)
            .expect("in-memory push performs no IO");
        let fast_stats = fast.stats();
        assert!(fast_stats.exact_hits > 0, "no exact hits on forked corpus");
        let mut slow = without.streaming();
        slow.push_texts_with_mode(&many, ExecutionMode::Parallel)
            .expect("in-memory push performs no IO");
        assert_eq!(slow.stats().exact_hits, 0);
        assert!(
            fast_stats.pushed_hashes < slow.stats().pushed_hashes,
            "exact hits must not build shingles"
        );
    }

    #[test]
    fn exact_repeat_of_a_removed_document_replays_its_resolution() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let base = distinct_docs()[0].clone();
        let near = format!("// vendor banner\n{base}\n// eof\n"); // near-dup of base
        let docs = vec![base, near.clone(), near];
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(outcome.kept, vec![0]);
        assert_eq!(outcome.removed.len(), 2);
        // Both removals point at the same kept file with the same similarity.
        assert_eq!(outcome.removed[0].1, 0);
        assert_eq!(outcome.removed[1].1, 0);
        assert_eq!(outcome.removed[0].2, outcome.removed[1].2);
    }

    #[test]
    fn spilled_engine_matches_the_resident_engine_for_any_budget() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let many: Vec<String> = (0..60)
            .map(|i| {
                let base = &docs[i % docs.len()];
                if i % 5 == 0 {
                    base.clone()
                } else {
                    format!("// file {i}\n{base}\nmodule pad_{i}(input p{i}); endmodule")
                }
            })
            .collect();
        let reference = dedup.dedup_texts_with_mode(&many, ExecutionMode::Parallel);
        for (shards, budget) in [(1, 1), (4, 1), (16, 2), (16, 4), (8, 32)] {
            let mut stream = dedup
                .streaming_with_spill(&DedupSpillConfig {
                    shards,
                    resident_shards: budget,
                    spill_dir: None,
                })
                .expect("spill engine opens");
            let mut merged = DedupOutcome::default();
            for chunk in many.chunks(7) {
                let outcome = stream
                    .push_texts_with_mode(chunk, ExecutionMode::Parallel)
                    .expect("spill IO succeeds");
                merged.kept.extend(outcome.kept);
                merged.removed.extend(outcome.removed);
            }
            assert_eq!(
                merged, reference,
                "spilled outcome diverged at {shards} shards, budget {budget}"
            );
            let stats = stream.stats();
            assert!(
                stats.peak_resident_shards <= budget.min(shards),
                "peak residency {} exceeded budget {budget} ({shards} shards)",
                stats.peak_resident_shards
            );
            if budget < shards {
                assert!(stats.shard_spills > 0, "bounded run never spilled");
                assert!(stats.shard_reloads > 0, "bounded run never reloaded");
                assert!(
                    stats.peak_resident_kept_hashes < stats.kept_hashes,
                    "kept-hash residency was never bounded"
                );
            }
            assert_eq!(stats.kept_docs, reference.kept.len());
        }
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let stream = dedup
            .streaming_with_spill(&DedupSpillConfig {
                shards: 8,
                resident_shards: 2,
                spill_dir: None,
            })
            .expect("spill engine opens");
        let dir = stream.spill.as_ref().expect("spill enabled").dir.clone();
        assert!(
            dir.exists(),
            "spill dir should exist while the engine lives"
        );
        drop(stream);
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn streaming_residency_tracks_the_kept_set() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        // 90 files, only 3 distinct: the kept set stays tiny.
        let many: Vec<String> = (0..90).map(|i| docs[i % docs.len()].clone()).collect();
        let mut stream = dedup.streaming();
        for chunk in many.chunks(10) {
            stream
                .push_texts_with_mode(chunk, ExecutionMode::Parallel)
                .expect("in-memory push performs no IO");
        }
        let stats = stream.stats();
        assert_eq!(stats.pushed, 90);
        assert_eq!(stats.kept_docs, docs.len());
        assert!(stats.kept_hashes > 0);
        // Residency invariant: after 90 pushes the engine holds exactly what
        // it would hold having seen only the 3 distinct files — the kept
        // set, not the corpus.
        let mut reference = dedup.streaming();
        reference
            .push_texts(&docs)
            .expect("in-memory push performs no IO");
        assert_eq!(stats.kept_hashes, reference.stats().kept_hashes);
        assert_eq!(stats.kept_docs, reference.stats().kept_docs);
        // With exact-hash pre-dedup, only the 3 first occurrences ever built
        // shingles: 87 of 90 pushes were short-circuited before signature
        // construction.
        assert_eq!(stats.exact_hits, 87);
        assert_eq!(stats.pushed_hashes, stats.kept_hashes);
        assert!(stats.peak_batch_hashes <= stats.kept_hashes);
        // The sharded index spread its buckets.
        assert!(stream.shard_bucket_counts().iter().sum::<usize>() > 0);
    }
}
