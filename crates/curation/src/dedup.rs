//! MinHash + LSH near-duplicate removal (§III-D2).
//!
//! Following VeriGen's procedure as described in the paper, every file is
//! reduced to a MinHash signature of its shingle set, locality-sensitive
//! hashing retrieves previously-kept files that may be similar, and a file
//! is discarded when its similarity with any kept file reaches the 0.85
//! threshold. Candidates are verified with exact Jaccard similarity so LSH
//! false positives cannot evict distinct files.

use gh_sim::ExtractedFile;
use serde::{Deserialize, Serialize};
use textsim::{char_shingles, jaccard_similarity, LshIndex, LshParams, MinHasher, ShingleSet};

use crate::stage::ExecutionMode;

/// Configuration of the de-duplicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedupConfig {
    /// Jaccard similarity at or above which a file counts as a duplicate.
    pub similarity_threshold: f64,
    /// Character shingle size.
    pub shingle_size: usize,
    /// Number of MinHash permutations.
    pub permutations: usize,
    /// Seed for the MinHash permutation family.
    pub seed: u64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self {
            similarity_threshold: 0.85,
            shingle_size: 8,
            permutations: 128,
            seed: 0x5EED,
        }
    }
}

/// The result of de-duplicating a file bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DedupOutcome {
    /// Indices (into the input slice) of the files that were kept.
    pub kept: Vec<usize>,
    /// `(dropped_index, kept_index_it_duplicates, similarity)` for removals.
    pub removed: Vec<(usize, usize, f64)>,
}

impl DedupOutcome {
    /// Fraction of the input that was removed.
    pub fn removal_rate(&self) -> f64 {
        let total = self.kept.len() + self.removed.len();
        if total == 0 {
            0.0
        } else {
            self.removed.len() as f64 / total as f64
        }
    }
}

/// MinHash/LSH de-duplicator.
///
/// # Example
///
/// ```
/// use curation::{DedupConfig, Deduplicator};
///
/// let dedup = Deduplicator::new(DedupConfig::default());
/// let docs = vec![
///     "module a(input x, output y); assign y = ~x; endmodule".to_string(),
///     "module a(input x, output y); assign y = ~x; endmodule".to_string(),
///     "module fifo(input clk, input rst); reg [7:0] mem [0:15]; endmodule".to_string(),
/// ];
/// let outcome = dedup.dedup_texts(&docs);
/// assert_eq!(outcome.kept.len(), 2);
/// assert_eq!(outcome.removed.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Deduplicator {
    config: DedupConfig,
    hasher: MinHasher,
    lsh_params: LshParams,
}

impl Deduplicator {
    /// Creates a de-duplicator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero permutations or a threshold
    /// outside `(0, 1)`.
    pub fn new(config: DedupConfig) -> Self {
        let hasher = MinHasher::new(config.permutations, config.seed);
        let lsh_params = LshParams::for_threshold(config.permutations, config.similarity_threshold);
        Self {
            config,
            hasher,
            lsh_params,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DedupConfig {
        self.config
    }

    /// Shingles one comment-stripped text: real-world copies typically
    /// differ only in banner comments or header boilerplate, and the
    /// similarity judgement should be about the code itself.
    fn shingle_text(&self, text: &str) -> ShingleSet {
        let code = verilog::strip_comments(text);
        char_shingles(&code, self.config.shingle_size)
    }

    /// De-duplicates a slice of raw texts, keeping the first occurrence of
    /// each near-duplicate group. Runs single-threaded; see
    /// [`Self::dedup_texts_with_mode`] for the parallel variant.
    pub fn dedup_texts<S: AsRef<str> + Sync>(&self, texts: &[S]) -> DedupOutcome {
        self.dedup_texts_with_mode(texts, ExecutionMode::Serial)
    }

    /// De-duplicates a slice of raw texts with the given execution mode.
    ///
    /// The keep/drop loop is inherently sequential (a file is compared
    /// against previously *kept* files), but shingling and signature
    /// construction — the dominant cost — are embarrassingly parallel:
    /// parallel mode computes them for the whole batch up front (order
    /// stable), while serial mode streams them per file so its peak memory
    /// stays proportional to the *kept* set. The outcome is identical in
    /// both modes.
    pub fn dedup_texts_with_mode<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        mode: ExecutionMode,
    ) -> DedupOutcome {
        match mode {
            ExecutionMode::Serial => self.dedup_prepared(texts.iter().map(|t| {
                let shingles = self.shingle_text(t.as_ref());
                let signature = self.hasher.signature(&shingles);
                (shingles, signature)
            })),
            ExecutionMode::Parallel => {
                use rayon::prelude::*;
                let shingles: Vec<ShingleSet> = texts
                    .par_iter()
                    .map(|t| self.shingle_text(t.as_ref()))
                    .collect();
                let signatures = self.hasher.par_signatures(&shingles);
                self.dedup_prepared(shingles.into_iter().zip(signatures))
            }
        }
    }

    /// The sequential first-occurrence-wins loop over prepared
    /// (shingles, signature) pairs in input order.
    fn dedup_prepared(
        &self,
        prepared: impl Iterator<Item = (ShingleSet, textsim::Signature)>,
    ) -> DedupOutcome {
        let mut outcome = DedupOutcome::default();
        let mut index = LshIndex::new(self.lsh_params);
        // Shingle sets of kept documents, addressed by their input index.
        let mut kept_shingles: Vec<(usize, ShingleSet)> = Vec::new();

        for (i, (shingles, signature)) in prepared.enumerate() {
            let mut duplicate_of: Option<(usize, f64)> = None;
            for candidate in index.candidates(&signature) {
                let (kept_input_index, kept_set) = &kept_shingles[candidate as usize];
                let similarity = jaccard_similarity(&shingles, kept_set);
                if similarity >= self.config.similarity_threshold {
                    duplicate_of = Some((*kept_input_index, similarity));
                    break;
                }
            }
            match duplicate_of {
                Some((kept_index, similarity)) => {
                    outcome.removed.push((i, kept_index, similarity));
                }
                None => {
                    let slot = kept_shingles.len() as u64;
                    index.insert(slot, &signature);
                    kept_shingles.push((i, shingles));
                    outcome.kept.push(i);
                }
            }
        }
        outcome
    }

    /// De-duplicates extracted files by their content, returning the kept
    /// files (first occurrence wins) and the outcome.
    pub fn dedup_files(&self, files: Vec<ExtractedFile>) -> (Vec<ExtractedFile>, DedupOutcome) {
        let outcome = self.dedup_texts_with_mode(
            &files
                .iter()
                .map(|f| f.content.as_str())
                .collect::<Vec<&str>>(),
            ExecutionMode::Serial,
        );
        let keep: std::collections::HashSet<usize> = outcome.kept.iter().copied().collect();
        let kept_files = files
            .into_iter()
            .enumerate()
            .filter_map(|(i, f)| keep.contains(&i).then_some(f))
            .collect();
        (kept_files, outcome)
    }

    /// De-duplicates extracted files, splitting them into kept files and
    /// `(removed_file, kept_input_index, similarity)` rows — the provenance
    /// the stage engine records. Both lists preserve input order.
    pub fn partition_files(
        &self,
        files: Vec<ExtractedFile>,
        mode: ExecutionMode,
    ) -> (Vec<ExtractedFile>, Vec<(ExtractedFile, usize, f64)>) {
        let outcome = self.dedup_texts_with_mode(
            &files
                .iter()
                .map(|f| f.content.as_str())
                .collect::<Vec<&str>>(),
            mode,
        );
        let removed_info: std::collections::HashMap<usize, (usize, f64)> = outcome
            .removed
            .iter()
            .map(|&(dropped, kept, similarity)| (dropped, (kept, similarity)))
            .collect();
        let mut kept_files = Vec::with_capacity(outcome.kept.len());
        let mut removed_files = Vec::with_capacity(outcome.removed.len());
        for (i, file) in files.into_iter().enumerate() {
            match removed_info.get(&i) {
                None => kept_files.push(file),
                Some(&(kept_index, similarity)) => {
                    removed_files.push((file, kept_index, similarity));
                }
            }
        }
        (kept_files, removed_files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct_docs() -> Vec<String> {
        vec![
            "module alu(input [3:0] a, input [3:0] b, input [1:0] op, output reg [3:0] y);\n\
             always @* case (op) 2'd0: y = a + b; 2'd1: y = a - b; 2'd2: y = a & b; default: y = a | b; endcase endmodule"
                .to_string(),
            "module fifo(input clk, input rst, input wr, input rd, input [7:0] din, output [7:0] dout);\n\
             reg [7:0] mem [0:15]; reg [4:0] wp, rp; assign dout = mem[rp[3:0]]; endmodule"
                .to_string(),
            "module uart_tx(input clk, input start, input [7:0] data, output reg txd);\n\
             reg [3:0] state; always @(posedge clk) if (start) state <= 1; endmodule"
                .to_string(),
        ]
    }

    #[test]
    fn exact_duplicates_are_removed() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let mut docs = distinct_docs();
        docs.push(docs[0].clone());
        docs.push(docs[1].clone());
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(outcome.kept.len(), 3);
        assert_eq!(outcome.removed.len(), 2);
        assert!((outcome.removal_rate() - 0.4).abs() < 1e-9);
        // The duplicates point back at the originals.
        assert!(outcome
            .removed
            .iter()
            .any(|(d, k, s)| *d == 3 && *k == 0 && *s >= 0.85));
    }

    #[test]
    fn near_duplicates_with_banner_comments_are_removed() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let base = distinct_docs()[0].clone();
        let variant =
            format!("// imported from a vendor reference design\n{base}\n// end of file\n");
        let outcome = dedup.dedup_texts(&[base, variant]);
        assert_eq!(
            outcome.kept.len(),
            1,
            "banner-comment variant should be deduplicated"
        );
    }

    #[test]
    fn distinct_designs_are_all_kept() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let outcome = dedup.dedup_texts(&distinct_docs());
        assert_eq!(outcome.kept.len(), 3);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.removal_rate(), 0.0);
    }

    #[test]
    fn first_occurrence_wins() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let dupes = vec![docs[2].clone(), docs[0].clone(), docs[2].clone()];
        let outcome = dedup.dedup_texts(&dupes);
        assert_eq!(outcome.kept, vec![0, 1]);
        assert_eq!(outcome.removed[0].0, 2);
        assert_eq!(outcome.removed[0].1, 0);
    }

    #[test]
    fn threshold_controls_aggressiveness() {
        let strict = Deduplicator::new(DedupConfig {
            similarity_threshold: 0.98,
            ..Default::default()
        });
        let loose = Deduplicator::new(DedupConfig {
            similarity_threshold: 0.30,
            ..Default::default()
        });
        let base = distinct_docs()[0].clone();
        // A moderately edited variant.
        let variant = base.replace("2'd0: y = a + b;", "2'd0: y = a + b + 1;");
        let docs = vec![base, variant];
        assert_eq!(strict.dedup_texts(&docs).kept.len(), 2);
        assert_eq!(loose.dedup_texts(&docs).kept.len(), 1);
    }

    #[test]
    fn dedup_files_preserves_metadata_of_kept_files() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let files: Vec<ExtractedFile> = docs
            .iter()
            .chain(std::iter::once(&docs[0]))
            .enumerate()
            .map(|(i, content)| ExtractedFile {
                repo_id: i as u64,
                repo_full_name: format!("owner/repo{i}"),
                owner: "owner".into(),
                repo_license: gh_sim::License::Mit,
                created_year: 2020,
                path: format!("f{i}.v"),
                content: content.clone(),
            })
            .collect();
        let (kept, outcome) = dedup.dedup_files(files);
        assert_eq!(kept.len(), 3);
        assert_eq!(outcome.removed.len(), 1);
        assert_eq!(kept[0].repo_full_name, "owner/repo0");
    }

    #[test]
    fn parallel_mode_is_identical_to_serial() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let many: Vec<String> = (0..60)
            .map(|i| {
                let base = &docs[i % docs.len()];
                if i % 5 == 0 {
                    base.clone() // planted duplicates
                } else {
                    format!("// file {i}\n{base}\nmodule pad_{i}(input p{i}); endmodule")
                }
            })
            .collect();
        let serial = dedup.dedup_texts_with_mode(&many, ExecutionMode::Serial);
        let parallel = dedup.dedup_texts_with_mode(&many, ExecutionMode::Parallel);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let outcome = dedup.dedup_texts::<String>(&[]);
        assert!(outcome.kept.is_empty());
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.removal_rate(), 0.0);
    }
}
