//! MinHash + LSH near-duplicate removal (§III-D2).
//!
//! Following VeriGen's procedure as described in the paper, every file is
//! reduced to a MinHash signature of its shingle set, locality-sensitive
//! hashing retrieves previously-kept files that may be similar, and a file
//! is discarded when its similarity with any kept file reaches the 0.85
//! threshold. Candidates are verified with exact Jaccard similarity so LSH
//! false positives cannot evict distinct files.
//!
//! Two entry points share one engine. [`Deduplicator`] is the one-shot API:
//! hand it a complete bank, get the kept/removed partition back.
//! [`StreamingDeduplicator`] is the incremental engine underneath: batches
//! are pushed as they arrive (e.g. straight off the concurrent scraper) and
//! resolved against the persistent kept-index immediately, so the corpus
//! never has to be buffered. Shingle/signature construction parallelises per
//! batch; the first-occurrence-wins resolution is sequential; kept shingle
//! sets are stored as compact sorted vectors and the LSH buckets live in a
//! [`ShardedLshIndex`], so peak memory tracks the *kept* set (plus one batch
//! in flight) rather than the whole corpus. The one-shot path is a
//! single-push stream, so both are identical by construction.

use gh_sim::ExtractedFile;
use serde::{Deserialize, Serialize};
use textsim::{
    char_shingles, jaccard_similarity_sorted, CandidateScratch, InsertOrMatch, LshParams,
    MinHasher, ShardedLshIndex, ShingleSet, Signature,
};

use crate::stage::ExecutionMode;

/// Configuration of the de-duplicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedupConfig {
    /// Jaccard similarity at or above which a file counts as a duplicate.
    pub similarity_threshold: f64,
    /// Character shingle size.
    pub shingle_size: usize,
    /// Number of MinHash permutations.
    pub permutations: usize,
    /// Seed for the MinHash permutation family.
    pub seed: u64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self {
            similarity_threshold: 0.85,
            shingle_size: 8,
            permutations: 128,
            seed: 0x5EED,
        }
    }
}

/// The result of de-duplicating a file bank.
///
/// Indices refer to the de-duplicator's input order: for a one-shot
/// [`Deduplicator`] call that is the input slice; for a
/// [`StreamingDeduplicator`] they are *global* positions across every batch
/// pushed so far (so a later batch's duplicate can point back at a file kept
/// from an earlier batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DedupOutcome {
    /// Indices (into the input order) of the files that were kept.
    pub kept: Vec<usize>,
    /// `(dropped_index, kept_index_it_duplicates, similarity)` for removals.
    pub removed: Vec<(usize, usize, f64)>,
}

impl DedupOutcome {
    /// Fraction of the input that was removed.
    pub fn removal_rate(&self) -> f64 {
        let total = self.kept.len() + self.removed.len();
        if total == 0 {
            0.0
        } else {
            self.removed.len() as f64 / total as f64
        }
    }
}

/// MinHash/LSH de-duplicator.
///
/// # Example
///
/// ```
/// use curation::{DedupConfig, Deduplicator};
///
/// let dedup = Deduplicator::new(DedupConfig::default());
/// let docs = vec![
///     "module a(input x, output y); assign y = ~x; endmodule".to_string(),
///     "module a(input x, output y); assign y = ~x; endmodule".to_string(),
///     "module fifo(input clk, input rst); reg [7:0] mem [0:15]; endmodule".to_string(),
/// ];
/// let outcome = dedup.dedup_texts(&docs);
/// assert_eq!(outcome.kept.len(), 2);
/// assert_eq!(outcome.removed.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Deduplicator {
    config: DedupConfig,
    hasher: MinHasher,
    lsh_params: LshParams,
}

impl Deduplicator {
    /// Creates a de-duplicator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero permutations or a threshold
    /// outside `(0, 1)`.
    pub fn new(config: DedupConfig) -> Self {
        let hasher = MinHasher::new(config.permutations, config.seed);
        let lsh_params = LshParams::for_threshold(config.permutations, config.similarity_threshold);
        Self {
            config,
            hasher,
            lsh_params,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DedupConfig {
        self.config
    }

    /// Opens a stateful streaming engine with this de-duplicator's
    /// configuration (sharing its already-built permutation family).
    pub fn streaming(&self) -> StreamingDeduplicator {
        StreamingDeduplicator::from_parts(self.config, self.hasher.clone(), self.lsh_params)
    }

    /// De-duplicates a slice of raw texts, keeping the first occurrence of
    /// each near-duplicate group. Runs single-threaded; see
    /// [`Self::dedup_texts_with_mode`] for the parallel variant.
    pub fn dedup_texts<S: AsRef<str> + Sync>(&self, texts: &[S]) -> DedupOutcome {
        self.dedup_texts_with_mode(texts, ExecutionMode::Serial)
    }

    /// De-duplicates a slice of raw texts with the given execution mode — a
    /// single-push [`StreamingDeduplicator`], so the one-shot and streamed
    /// paths cannot diverge.
    ///
    /// The keep/drop loop is inherently sequential (a file is compared
    /// against previously *kept* files), but shingling and signature
    /// construction — the dominant cost — are embarrassingly parallel:
    /// parallel mode computes them for the whole batch up front (order
    /// stable), while serial mode streams them per file so its peak memory
    /// stays proportional to the *kept* set. The outcome is identical in
    /// both modes.
    pub fn dedup_texts_with_mode<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        mode: ExecutionMode,
    ) -> DedupOutcome {
        self.streaming().push_texts_with_mode(texts, mode)
    }

    /// De-duplicates extracted files by their content with the given
    /// execution mode, returning the kept files (first occurrence wins) and
    /// the outcome.
    pub fn dedup_files(
        &self,
        files: Vec<ExtractedFile>,
        mode: ExecutionMode,
    ) -> (Vec<ExtractedFile>, DedupOutcome) {
        let outcome = self.dedup_texts_with_mode(
            &files
                .iter()
                .map(|f| f.content.as_str())
                .collect::<Vec<&str>>(),
            mode,
        );
        let keep: std::collections::HashSet<usize> = outcome.kept.iter().copied().collect();
        let kept_files = files
            .into_iter()
            .enumerate()
            .filter_map(|(i, f)| keep.contains(&i).then_some(f))
            .collect();
        (kept_files, outcome)
    }
}

/// Residency statistics of a [`StreamingDeduplicator`] — what the engine is
/// actually holding, so benchmarks (and capacity planning) can verify that
/// memory tracks the kept set instead of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamingDedupStats {
    /// Total documents pushed so far.
    pub pushed: usize,
    /// Documents currently kept (and therefore resident).
    pub kept_docs: usize,
    /// Total shingle hashes stored for the kept documents — the dominant
    /// residency term, one `u64` per hash.
    pub kept_hashes: usize,
    /// Total shingle hashes across *every* pushed document — what a
    /// corpus-buffering implementation would have had to hold at once.
    pub pushed_hashes: usize,
    /// Shingle hashes of the largest single push — the batch-shaped
    /// transient working-set bound, identical in both execution modes
    /// (serial mode actually materialises only one file of it at a time).
    pub peak_batch_hashes: usize,
}

/// The incremental MinHash/LSH de-duplication engine.
///
/// Batches are pushed in arrival order; each document is resolved against
/// the persistent kept-index immediately (LSH candidates from a
/// [`ShardedLshIndex`], verified with exact Jaccard) and either recorded as
/// a duplicate of an earlier *kept* document or inserted as newly kept.
/// Pushing batches b₁…bₙ yields exactly the outcomes of one-shot
/// de-duplication over b₁ ⧺ … ⧺ bₙ, split along the same boundaries — the
/// one-shot [`Deduplicator`] API is literally a single-push stream.
///
/// Kept shingle sets are stored as compact ascending `Vec<u64>`s (verified
/// with [`jaccard_similarity_sorted`]) and candidate retrieval reuses one
/// [`CandidateScratch`], so steady-state memory is the kept documents plus
/// the batch in flight, and the hot loop does not allocate per query.
///
/// # Example
///
/// ```
/// use curation::{DedupConfig, Deduplicator, ExecutionMode};
///
/// let dedup = Deduplicator::new(DedupConfig::default());
/// let mut stream = dedup.streaming();
/// let first = stream.push_texts(&["module a(input x); assign y = ~x; endmodule"]);
/// assert_eq!(first.kept, vec![0]);
/// // The duplicate arrives in a later batch but still points back at the
/// // kept file's global index.
/// let second = stream.push_texts(&["module a(input x); assign y = ~x; endmodule"]);
/// assert_eq!(second.removed, vec![(1, 0, 1.0)]);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDeduplicator {
    config: DedupConfig,
    hasher: MinHasher,
    index: ShardedLshIndex,
    /// Kept documents addressed by their index slot: global input index and
    /// compact ascending shingle hashes.
    kept: Vec<(usize, Vec<u64>)>,
    scratch: CandidateScratch,
    seen: usize,
    kept_hashes: usize,
    pushed_hashes: usize,
    peak_batch_hashes: usize,
}

impl StreamingDeduplicator {
    /// Creates a streaming engine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero permutations or a threshold
    /// outside `(0, 1)`.
    pub fn new(config: DedupConfig) -> Self {
        Deduplicator::new(config).streaming()
    }

    fn from_parts(config: DedupConfig, hasher: MinHasher, lsh_params: LshParams) -> Self {
        Self {
            config,
            hasher,
            index: ShardedLshIndex::new(lsh_params),
            kept: Vec::new(),
            scratch: CandidateScratch::new(),
            seen: 0,
            kept_hashes: 0,
            pushed_hashes: 0,
            peak_batch_hashes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DedupConfig {
        self.config
    }

    /// Total documents pushed so far (the next document's global index).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Number of documents currently kept.
    pub fn kept_len(&self) -> usize {
        self.kept.len()
    }

    /// Current residency statistics.
    pub fn stats(&self) -> StreamingDedupStats {
        StreamingDedupStats {
            pushed: self.seen,
            kept_docs: self.kept.len(),
            kept_hashes: self.kept_hashes,
            pushed_hashes: self.pushed_hashes,
            peak_batch_hashes: self.peak_batch_hashes,
        }
    }

    /// Per-shard occupied-bucket counts of the underlying LSH index.
    pub fn shard_bucket_counts(&self) -> Vec<usize> {
        self.index.shard_bucket_counts()
    }

    /// Pushes one batch single-threaded; see
    /// [`Self::push_texts_with_mode`].
    pub fn push_texts<S: AsRef<str> + Sync>(&mut self, texts: &[S]) -> DedupOutcome {
        self.push_texts_with_mode(texts, ExecutionMode::Serial)
    }

    /// Pushes one batch of raw texts through the engine, resolving each
    /// against everything kept so far. Returned indices are global (across
    /// all pushes); parallel mode fans the batch's shingle/signature
    /// construction across threads with order-stable results, so both modes
    /// produce identical outcomes.
    pub fn push_texts_with_mode<S: AsRef<str> + Sync>(
        &mut self,
        texts: &[S],
        mode: ExecutionMode,
    ) -> DedupOutcome {
        let mut outcome = DedupOutcome::default();
        let mut batch_hashes = 0usize;
        match mode {
            ExecutionMode::Serial => {
                for text in texts {
                    let shingles = self.shingle_text(text.as_ref());
                    let signature = self.hasher.signature(&shingles);
                    batch_hashes += shingles.len();
                    self.resolve(shingles, signature, &mut outcome);
                }
            }
            ExecutionMode::Parallel => {
                use rayon::prelude::*;
                let shingles: Vec<ShingleSet> = texts
                    .par_iter()
                    .map(|t| self.shingle_text(t.as_ref()))
                    .collect();
                let signatures = self.hasher.par_signatures(&shingles);
                batch_hashes = shingles.iter().map(ShingleSet::len).sum();
                for (set, signature) in shingles.into_iter().zip(signatures) {
                    self.resolve(set, signature, &mut outcome);
                }
            }
        }
        self.pushed_hashes += batch_hashes;
        self.peak_batch_hashes = self.peak_batch_hashes.max(batch_hashes);
        outcome
    }

    /// Shingles one comment-stripped text: real-world copies typically
    /// differ only in banner comments or header boilerplate, and the
    /// similarity judgement should be about the code itself. (A comment-only
    /// file therefore shingles to the empty set; see
    /// [`textsim::jaccard_similarity`] — two empty sets are defined
    /// identical, so comment-only files de-duplicate down to the first one.)
    fn shingle_text(&self, text: &str) -> ShingleSet {
        let code = verilog::strip_comments(text);
        char_shingles(&code, self.config.shingle_size)
    }

    /// The sequential first-occurrence-wins resolution of one document.
    fn resolve(&mut self, shingles: ShingleSet, signature: Signature, outcome: &mut DedupOutcome) {
        let input_index = self.seen;
        self.seen += 1;
        let hashes: Vec<u64> = shingles.iter().collect();
        let threshold = self.config.similarity_threshold;
        let kept = &self.kept;
        let verdict = self.index.insert_or_match(
            kept.len() as u64,
            &signature,
            &mut self.scratch,
            |candidate| {
                let (_, kept_hashes) = &kept[candidate as usize];
                let similarity = jaccard_similarity_sorted(&hashes, kept_hashes);
                (similarity >= threshold).then_some(similarity)
            },
        );
        match verdict {
            InsertOrMatch::Matched(slot, similarity) => {
                let kept_input_index = self.kept[slot as usize].0;
                outcome
                    .removed
                    .push((input_index, kept_input_index, similarity));
            }
            InsertOrMatch::Inserted => {
                self.kept_hashes += hashes.len();
                self.kept.push((input_index, hashes));
                outcome.kept.push(input_index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct_docs() -> Vec<String> {
        vec![
            "module alu(input [3:0] a, input [3:0] b, input [1:0] op, output reg [3:0] y);\n\
             always @* case (op) 2'd0: y = a + b; 2'd1: y = a - b; 2'd2: y = a & b; default: y = a | b; endcase endmodule"
                .to_string(),
            "module fifo(input clk, input rst, input wr, input rd, input [7:0] din, output [7:0] dout);\n\
             reg [7:0] mem [0:15]; reg [4:0] wp, rp; assign dout = mem[rp[3:0]]; endmodule"
                .to_string(),
            "module uart_tx(input clk, input start, input [7:0] data, output reg txd);\n\
             reg [3:0] state; always @(posedge clk) if (start) state <= 1; endmodule"
                .to_string(),
        ]
    }

    #[test]
    fn exact_duplicates_are_removed() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let mut docs = distinct_docs();
        docs.push(docs[0].clone());
        docs.push(docs[1].clone());
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(outcome.kept.len(), 3);
        assert_eq!(outcome.removed.len(), 2);
        assert!((outcome.removal_rate() - 0.4).abs() < 1e-9);
        // The duplicates point back at the originals.
        assert!(outcome
            .removed
            .iter()
            .any(|(d, k, s)| *d == 3 && *k == 0 && *s >= 0.85));
    }

    #[test]
    fn near_duplicates_with_banner_comments_are_removed() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let base = distinct_docs()[0].clone();
        let variant =
            format!("// imported from a vendor reference design\n{base}\n// end of file\n");
        let outcome = dedup.dedup_texts(&[base, variant]);
        assert_eq!(
            outcome.kept.len(),
            1,
            "banner-comment variant should be deduplicated"
        );
    }

    #[test]
    fn distinct_designs_are_all_kept() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let outcome = dedup.dedup_texts(&distinct_docs());
        assert_eq!(outcome.kept.len(), 3);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.removal_rate(), 0.0);
    }

    #[test]
    fn first_occurrence_wins() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let dupes = vec![docs[2].clone(), docs[0].clone(), docs[2].clone()];
        let outcome = dedup.dedup_texts(&dupes);
        assert_eq!(outcome.kept, vec![0, 1]);
        assert_eq!(outcome.removed[0].0, 2);
        assert_eq!(outcome.removed[0].1, 0);
    }

    #[test]
    fn threshold_controls_aggressiveness() {
        let strict = Deduplicator::new(DedupConfig {
            similarity_threshold: 0.98,
            ..Default::default()
        });
        let loose = Deduplicator::new(DedupConfig {
            similarity_threshold: 0.30,
            ..Default::default()
        });
        let base = distinct_docs()[0].clone();
        // A moderately edited variant.
        let variant = base.replace("2'd0: y = a + b;", "2'd0: y = a + b + 1;");
        let docs = vec![base, variant];
        assert_eq!(strict.dedup_texts(&docs).kept.len(), 2);
        assert_eq!(loose.dedup_texts(&docs).kept.len(), 1);
    }

    #[test]
    fn dedup_files_preserves_metadata_of_kept_files() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let files: Vec<ExtractedFile> = docs
            .iter()
            .chain(std::iter::once(&docs[0]))
            .enumerate()
            .map(|(i, content)| ExtractedFile {
                repo_id: i as u64,
                repo_full_name: format!("owner/repo{i}"),
                owner: "owner".into(),
                repo_license: gh_sim::License::Mit,
                created_year: 2020,
                path: format!("f{i}.v"),
                content: content.clone(),
            })
            .collect();
        let (kept, outcome) = dedup.dedup_files(files, ExecutionMode::Serial);
        assert_eq!(kept.len(), 3);
        assert_eq!(outcome.removed.len(), 1);
        assert_eq!(kept[0].repo_full_name, "owner/repo0");
    }

    #[test]
    fn dedup_files_honours_the_execution_mode() {
        // Regression: dedup_files used to hardcode ExecutionMode::Serial.
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let files: Vec<ExtractedFile> = (0..30)
            .map(|i| ExtractedFile {
                repo_id: i as u64,
                repo_full_name: format!("owner/repo{i}"),
                owner: "owner".into(),
                repo_license: gh_sim::License::Mit,
                created_year: 2020,
                path: format!("f{i}.v"),
                content: docs[i % docs.len()].clone(),
            })
            .collect();
        let (kept_serial, outcome_serial) = dedup.dedup_files(files.clone(), ExecutionMode::Serial);
        let (kept_parallel, outcome_parallel) = dedup.dedup_files(files, ExecutionMode::Parallel);
        assert_eq!(kept_serial, kept_parallel);
        assert_eq!(outcome_serial, outcome_parallel);
        assert_eq!(kept_serial.len(), docs.len());
    }

    #[test]
    fn parallel_mode_is_identical_to_serial() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let many: Vec<String> = (0..60)
            .map(|i| {
                let base = &docs[i % docs.len()];
                if i % 5 == 0 {
                    base.clone() // planted duplicates
                } else {
                    format!("// file {i}\n{base}\nmodule pad_{i}(input p{i}); endmodule")
                }
            })
            .collect();
        let serial = dedup.dedup_texts_with_mode(&many, ExecutionMode::Serial);
        let parallel = dedup.dedup_texts_with_mode(&many, ExecutionMode::Parallel);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let outcome = dedup.dedup_texts::<String>(&[]);
        assert!(outcome.kept.is_empty());
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.removal_rate(), 0.0);
    }

    /// Pins the semantics of comment-only files, which shingle to the empty
    /// set after comment stripping: `jaccard(∅, ∅) == 1.0`, so the first
    /// comment-only file is kept and every later one — byte-identical or
    /// not — is removed as its duplicate. Code is what the similarity
    /// judgement is about; files with no code are all "the same nothing".
    #[test]
    fn comment_only_files_deduplicate_to_the_first() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = vec![
            "// just a banner comment\n/* and a block comment */\n".to_string(),
            "// just a banner comment\n/* and a block comment */\n".to_string(), // byte-identical
            "// an entirely different comment\n".to_string(), // different text, still no code
            distinct_docs()[0].clone(),                       // real code survives alongside
        ];
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(outcome.kept, vec![0, 3]);
        assert_eq!(outcome.removed.len(), 2);
        for &(dropped, kept, similarity) in &outcome.removed {
            assert_eq!(
                kept, 0,
                "comment-only file {dropped} must point at the first"
            );
            assert_eq!(similarity, 1.0);
        }
    }

    #[test]
    fn comment_only_files_never_absorb_real_code() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = vec!["// comment-only\n".to_string(), distinct_docs()[0].clone()];
        let outcome = dedup.dedup_texts(&docs);
        assert_eq!(
            outcome.kept,
            vec![0, 1],
            "an empty shingle set must not match non-empty code"
        );
    }

    #[test]
    fn streamed_batches_match_one_shot_for_any_split() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        let many: Vec<String> = (0..48)
            .map(|i| {
                let base = &docs[i % docs.len()];
                if i % 4 == 0 {
                    base.clone()
                } else {
                    format!("// file {i}\n{base}\nmodule pad_{i}(input p{i}); endmodule")
                }
            })
            .collect();
        let one_shot = dedup.dedup_texts_with_mode(&many, ExecutionMode::Parallel);
        for batch_size in [1, 5, 16, 48, 100] {
            for mode in [ExecutionMode::Serial, ExecutionMode::Parallel] {
                let mut stream = dedup.streaming();
                let mut merged = DedupOutcome::default();
                for chunk in many.chunks(batch_size) {
                    let outcome = stream.push_texts_with_mode(chunk, mode);
                    merged.kept.extend(outcome.kept);
                    merged.removed.extend(outcome.removed);
                }
                assert_eq!(
                    merged, one_shot,
                    "streamed outcome diverged at batch size {batch_size} in {mode:?} mode"
                );
                assert_eq!(stream.seen(), many.len());
                assert_eq!(stream.kept_len(), one_shot.kept.len());
            }
        }
    }

    #[test]
    fn streaming_residency_tracks_the_kept_set() {
        let dedup = Deduplicator::new(DedupConfig::default());
        let docs = distinct_docs();
        // 90 files, only 3 distinct: the kept set stays tiny.
        let many: Vec<String> = (0..90).map(|i| docs[i % docs.len()].clone()).collect();
        let mut stream = dedup.streaming();
        for chunk in many.chunks(10) {
            stream.push_texts_with_mode(chunk, ExecutionMode::Parallel);
        }
        let stats = stream.stats();
        assert_eq!(stats.pushed, 90);
        assert_eq!(stats.kept_docs, docs.len());
        assert!(stats.kept_hashes > 0);
        // Residency invariant: after 90 pushes the engine holds exactly what
        // it would hold having seen only the 3 distinct files — the kept
        // set, not the corpus.
        let mut reference = dedup.streaming();
        reference.push_texts(&docs);
        assert_eq!(stats.kept_hashes, reference.stats().kept_hashes);
        assert_eq!(stats.kept_docs, reference.stats().kept_docs);
        // The transient working set is one 10-file batch, not the corpus: 9
        // batches of equal content mean the peak is ~1/9 of the total pushed.
        assert_eq!(stats.pushed_hashes, 30 * stats.kept_hashes);
        assert!(stats.peak_batch_hashes <= stats.pushed_hashes / 4);
        // The sharded index spread its buckets.
        assert!(stream.shard_bucket_counts().iter().sum::<usize>() > 0);
    }
}
