//! Syntax filtering stage (§III-D2) — the Icarus Verilog stand-in.

use verilog::SyntaxChecker;

/// Removes files with syntax errors, tolerating unresolved references to
/// modules defined in other files (exactly the paper's policy: "only
/// syntax-specific errors were identified and removed").
///
/// The checker is built once at construction and shared across every file
/// the filter judges, so batch stages pay the setup cost a single time.
///
/// # Example
///
/// ```
/// use curation::SyntaxFilter;
///
/// let filter = SyntaxFilter::new();
/// assert!(filter.passes("module m(input a, output y); assign y = a; endmodule"));
/// assert!(!filter.passes("module m(input a output y); assign y = a; endmodule"));
/// assert!(filter.passes("module top(input a); other_block u0(.x(a)); endmodule"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntaxFilter {
    checker: SyntaxChecker,
}

impl Default for SyntaxFilter {
    // Explicit: the derived default would use `SyntaxChecker::default()`,
    // which does not require a module per file the way `new()` does.
    fn default() -> Self {
        Self::new()
    }
}

impl SyntaxFilter {
    /// Creates a syntax filter.
    pub fn new() -> Self {
        Self {
            checker: SyntaxChecker::new(),
        }
    }

    /// The shared checker.
    pub fn checker(&self) -> &SyntaxChecker {
        &self.checker
    }

    /// Whether the file passes the syntax check.
    pub fn passes(&self, content: &str) -> bool {
        self.checker.is_valid(content)
    }

    /// Partitions contents into `(passing, failing)` index lists.
    pub fn partition_indices<S: AsRef<str>>(&self, contents: &[S]) -> (Vec<usize>, Vec<usize>) {
        let mut pass = Vec::new();
        let mut fail = Vec::new();
        for (i, c) in contents.iter().enumerate() {
            if self.passes(c.as_ref()) {
                pass.push(i);
            } else {
                fail.push(i);
            }
        }
        (pass, fail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_and_broken_files_are_separated() {
        let filter = SyntaxFilter::new();
        let contents = vec![
            "module a(input x, output y); assign y = x; endmodule",
            "module b(input x, output y) assign y = x; endmodule", // missing ;
            "not verilog at all",
            "module c(input clk); always @(posedge clk) ; endmodule",
        ];
        let (pass, fail) = filter.partition_indices(&contents);
        assert_eq!(pass, vec![0, 3]);
        assert_eq!(fail, vec![1, 2]);
    }

    #[test]
    fn comment_only_files_fail() {
        let filter = SyntaxFilter::new();
        assert!(!filter.passes("// just a comment"));
    }

    #[test]
    fn default_construction_keeps_the_module_requirement() {
        // Regression: `SyntaxStage::default()` builds its filter via
        // `Default`, which must match `new()`'s policy exactly.
        assert!(!SyntaxFilter::default().passes("// just a comment"));
        assert_eq!(SyntaxFilter::default(), SyntaxFilter::new());
    }

    #[test]
    fn unresolved_instances_still_pass() {
        let filter = SyntaxFilter::new();
        assert!(filter.passes(
            "module soc(input clk); cpu u_cpu(.clk(clk)); dram u_mem(.clk(clk)); endmodule"
        ));
    }
}
