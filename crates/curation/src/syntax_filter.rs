//! Syntax filtering stage (§III-D2) — the Icarus Verilog stand-in.

use serde::{Deserialize, Serialize};
use verilog::SyntaxChecker;

/// Removes files with syntax errors, tolerating unresolved references to
/// modules defined in other files (exactly the paper's policy: "only
/// syntax-specific errors were identified and removed").
///
/// # Example
///
/// ```
/// use curation::SyntaxFilter;
///
/// let filter = SyntaxFilter::new();
/// assert!(filter.passes("module m(input a, output y); assign y = a; endmodule"));
/// assert!(!filter.passes("module m(input a output y); assign y = a; endmodule"));
/// assert!(filter.passes("module top(input a); other_block u0(.x(a)); endmodule"));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntaxFilter {
    _private: (),
}

impl SyntaxFilter {
    /// Creates a syntax filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the file passes the syntax check.
    pub fn passes(&self, content: &str) -> bool {
        SyntaxChecker::new().is_valid(content)
    }

    /// Partitions contents into `(passing, failing)` index lists.
    pub fn partition_indices<S: AsRef<str>>(&self, contents: &[S]) -> (Vec<usize>, Vec<usize>) {
        let mut pass = Vec::new();
        let mut fail = Vec::new();
        for (i, c) in contents.iter().enumerate() {
            if self.passes(c.as_ref()) {
                pass.push(i);
            } else {
                fail.push(i);
            }
        }
        (pass, fail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_and_broken_files_are_separated() {
        let filter = SyntaxFilter::new();
        let contents = vec![
            "module a(input x, output y); assign y = x; endmodule",
            "module b(input x, output y) assign y = x; endmodule", // missing ;
            "not verilog at all",
            "module c(input clk); always @(posedge clk) ; endmodule",
        ];
        let (pass, fail) = filter.partition_indices(&contents);
        assert_eq!(pass, vec![0, 3]);
        assert_eq!(fail, vec![1, 2]);
    }

    #[test]
    fn comment_only_files_fail() {
        let filter = SyntaxFilter::new();
        assert!(!filter.passes("// just a comment"));
    }

    #[test]
    fn unresolved_instances_still_pass() {
        let filter = SyntaxFilter::new();
        assert!(filter.passes(
            "module soc(input clk); cpu u_cpu(.clk(clk)); dram u_mem(.clk(clk)); endmodule"
        ));
    }
}
