//! Repository-level license filtering (§III-C2).

use gh_sim::{ExtractedFile, License};
use serde::{Deserialize, Serialize};

/// Filters extracted files by the license of their source repository.
///
/// # Example
///
/// ```
/// use curation::LicenseFilter;
/// use gh_sim::License;
///
/// let filter = LicenseFilter::paper_default();
/// assert!(filter.accepts_license(License::Mit));
/// assert!(!filter.accepts_license(License::None));
/// assert!(!filter.accepts_license(License::Proprietary));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LicenseFilter {
    accepted: Vec<License>,
}

impl LicenseFilter {
    /// The paper's accepted license set: MIT, Apache-2.0, GPL/LGPL variants,
    /// MPL-2.0, Creative Commons, Eclipse and the BSD licenses.
    pub fn paper_default() -> Self {
        Self {
            accepted: License::ACCEPTED.to_vec(),
        }
    }

    /// A filter accepting only the given licenses.
    pub fn with_accepted(accepted: Vec<License>) -> Self {
        Self { accepted }
    }

    /// A filter accepting only permissive licenses (no copyleft) — used by
    /// ablation experiments.
    pub fn permissive_only() -> Self {
        Self {
            accepted: License::ACCEPTED
                .iter()
                .copied()
                .filter(License::is_permissive)
                .collect(),
        }
    }

    /// The accepted license list.
    pub fn accepted(&self) -> &[License] {
        &self.accepted
    }

    /// Whether a repository license is acceptable.
    pub fn accepts_license(&self, license: License) -> bool {
        self.accepted.contains(&license)
    }

    /// Whether an extracted file's repository license is acceptable.
    pub fn accepts(&self, file: &ExtractedFile) -> bool {
        self.accepts_license(file.repo_license)
    }

    /// Partitions files into `(accepted, rejected)`.
    pub fn partition(&self, files: Vec<ExtractedFile>) -> (Vec<ExtractedFile>, Vec<ExtractedFile>) {
        files.into_iter().partition(|f| self.accepts(f))
    }
}

impl Default for LicenseFilter {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_with(license: License) -> ExtractedFile {
        ExtractedFile {
            repo_id: 0,
            repo_full_name: "o/r".into(),
            owner: "o".into(),
            repo_license: license,
            created_year: 2020,
            path: "a.v".into(),
            content: "module m; endmodule".into(),
        }
    }

    #[test]
    fn paper_default_accepts_all_ten_licenses() {
        let f = LicenseFilter::paper_default();
        assert_eq!(f.accepted().len(), 10);
        for l in License::ACCEPTED {
            assert!(f.accepts_license(l));
        }
    }

    #[test]
    fn unlicensed_and_proprietary_are_rejected() {
        let f = LicenseFilter::paper_default();
        assert!(!f.accepts(&file_with(License::None)));
        assert!(!f.accepts(&file_with(License::Proprietary)));
        assert!(f.accepts(&file_with(License::Gpl3)));
    }

    #[test]
    fn permissive_only_rejects_copyleft() {
        let f = LicenseFilter::permissive_only();
        assert!(f.accepts_license(License::Mit));
        assert!(!f.accepts_license(License::Gpl3));
        assert!(!f.accepts_license(License::Lgpl));
    }

    #[test]
    fn partition_splits_correctly() {
        let f = LicenseFilter::paper_default();
        let files = vec![
            file_with(License::Mit),
            file_with(License::None),
            file_with(License::Apache2),
        ];
        let (accepted, rejected) = f.partition(files);
        assert_eq!(accepted.len(), 2);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].repo_license, License::None);
    }

    #[test]
    fn custom_accepted_list() {
        let f = LicenseFilter::with_accepted(vec![License::Mit]);
        assert!(f.accepts_license(License::Mit));
        assert!(!f.accepts_license(License::Apache2));
    }
}
