//! The FreeSet dataset-curation framework (§III-B/C/D of the paper).
//!
//! The framework turns a raw bank of scraped Verilog files into a curated,
//! fair-use training corpus through four stages, in the paper's order:
//!
//! 1. **License filtering** ([`LicenseFilter`]): only repositories carrying
//!    one of the accepted open-source licenses are kept; unlicensed
//!    repositories are a legal grey area and are dropped.
//! 2. **De-duplication** ([`Deduplicator`]): MinHash signatures with
//!    locality-sensitive hashing retrieve near-duplicate candidates, which
//!    are verified with exact Jaccard similarity at a 0.85 threshold.
//! 3. **Syntax filtering** ([`SyntaxFilter`]): files that do not lex/parse
//!    are removed (unresolved cross-file module references are tolerated).
//! 4. **Per-file copyright filtering** ([`CopyrightDetector`]): header
//!    comments are scanned for proprietary-copyright keyword combinations so
//!    that protected files hidden inside "open-source" repositories are
//!    removed.
//!
//! [`CurationPipeline`] chains the stages and records a [`FunnelStats`]
//! describing how much each stage removed — the quantity reported in §IV-A
//! of the paper. Stage toggles in [`CurationConfig`] also let the model zoo
//! reproduce *prior works'* weaker policies (e.g. VeriGen's no-license-check
//! curation) for the comparison experiments.
//!
//! # Example
//!
//! ```
//! use curation::{CurationConfig, CurationPipeline};
//! use gh_sim::{GithubApi, Scraper, ScraperConfig, Universe, UniverseConfig};
//!
//! let universe = Universe::generate(&UniverseConfig { repo_count: 30, seed: 9, ..Default::default() });
//! let api = GithubApi::new(&universe);
//! let scraped = Scraper::new(ScraperConfig::default()).run(&api)?;
//! let dataset = CurationPipeline::new(CurationConfig::freeset()).run(scraped.files);
//! assert!(dataset.len() > 0);
//! assert!(dataset.funnel().initial >= dataset.len());
//! # Ok::<(), gh_sim::ApiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod copyright;
pub mod dedup;
pub mod funnel;
pub mod license_filter;
pub mod pipeline;
pub mod report;
pub mod syntax_filter;

pub use copyright::{CopyrightDetector, CopyrightFinding};
pub use dedup::{DedupConfig, DedupOutcome, Deduplicator};
pub use funnel::FunnelStats;
pub use license_filter::LicenseFilter;
pub use pipeline::{
    CuratedDataset, CuratedFile, CurationConfig, CurationPipeline, DatasetStructure,
};
pub use report::{DatasetSummary, LengthHistogram};
pub use syntax_filter::SyntaxFilter;
