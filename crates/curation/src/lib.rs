//! The FreeSet dataset-curation framework (§III-B/C/D of the paper).
//!
//! The framework turns a raw bank of scraped Verilog files into a curated,
//! fair-use training corpus through a sequence of [`CurationStage`]s. The
//! paper's FreeSet policy runs these stages, in pipeline order:
//!
//! 1. **License filtering** ([`LicenseStage`] over [`LicenseFilter`]): only
//!    repositories carrying one of the accepted open-source licenses are
//!    kept; unlicensed repositories are a legal grey area and are dropped.
//! 2. **Length capping** ([`LengthCapStage`]) — *optional*: prior-work
//!    policies such as CodeV truncate their corpus at a maximum file length;
//!    FreeSet itself applies no cap. The stage only runs when
//!    [`CurationConfig::max_file_chars`] is set.
//! 3. **De-duplication** ([`DedupStage`] over [`Deduplicator`]): MinHash
//!    signatures with locality-sensitive hashing retrieve near-duplicate
//!    candidates, which are verified with exact Jaccard similarity at a 0.85
//!    threshold.
//! 4. **Syntax filtering** ([`SyntaxStage`] over [`SyntaxFilter`]): files
//!    that do not lex/parse are removed (unresolved cross-file module
//!    references are tolerated).
//! 5. **Semantic lint filtering** ([`LintStage`] over [`verilog::lint`]):
//!    files whose static analysis findings reach the policy's severity
//!    threshold (by default, error-severity findings such as combinational
//!    loops or multiply-driven nets) are removed, with the offending rule
//!    id recorded as the rejection's category.
//! 6. **Per-file copyright filtering** ([`CopyrightStage`] over
//!    [`CopyrightDetector`]): header comments are scanned for
//!    proprietary-copyright keyword combinations so that protected files
//!    hidden inside "open-source" repositories are removed.
//!
//! [`CurationPipeline`] chains the stages and records a stage-keyed
//! [`FunnelStats`] describing how much each stage removed — the quantity
//! reported in §IV-A of the paper. Every removed file is retained in the
//! dataset with provenance (a [`RejectedFile`] carrying its [`RejectReason`]
//! and the rejecting stage's name). Stage toggles in [`CurationConfig`] let
//! the model zoo reproduce *prior works'* weaker policies (e.g. VeriGen's
//! no-license-check curation), and arbitrary custom [`CurationStage`]s can
//! be appended with [`CurationPipeline::with_stage`].
//!
//! Per-file stages fan out across threads ([`ExecutionMode::Parallel`], the
//! default) with order-stable merging, so parallel runs produce output
//! identical to serial runs.
//!
//! # Example
//!
//! ```
//! use curation::{CurationConfig, CurationPipeline};
//! use gh_sim::{GithubApi, Scraper, ScraperConfig, Universe, UniverseConfig};
//!
//! let universe = Universe::generate(&UniverseConfig { repo_count: 30, seed: 9, ..Default::default() });
//! let api = GithubApi::new(&universe);
//! let scraped = Scraper::new(ScraperConfig::default()).run(&api)?;
//! let dataset = CurationPipeline::new(CurationConfig::freeset()).run(scraped.files);
//! assert!(dataset.len() > 0);
//! assert!(dataset.funnel().initial() >= dataset.len());
//! # Ok::<(), gh_sim::ApiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod copyright;
pub mod dedup;
pub mod funnel;
pub mod intake;
pub mod license_filter;
pub mod lint_stage;
pub mod parse_cache;
pub mod pipeline;
pub mod report;
pub mod stage;
pub mod stages;
pub mod syntax_filter;

pub use copyright::{CopyrightDetector, CopyrightFinding};
pub use dedup::{
    DedupConfig, DedupOutcome, DedupSpillConfig, Deduplicator, StreamingDedupStats,
    StreamingDeduplicator,
};
pub use funnel::{FunnelStats, StageCount};
pub use intake::CurationSession;
pub use license_filter::LicenseFilter;
pub use lint_stage::{LintRejectPolicy, LintStage};
pub use parse_cache::ParseCache;
pub use pipeline::{
    CuratedDataset, CuratedFile, CurationConfig, CurationPipeline, DatasetStructure,
};
pub use report::{DatasetSummary, LengthHistogram};
pub use stage::{
    stage_names, CurationStage, ExecutionMode, FileBatch, RejectReason, RejectedFile, StageOutcome,
    StageStream, StageStreaming,
};
pub use stages::{
    CopyrightStage, DedupStage, DedupStream, LengthCapStage, LicenseStage, SyntaxStage,
};
pub use syntax_filter::SyntaxFilter;
