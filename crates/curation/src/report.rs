//! Dataset summaries and the file-length histogram behind Figure 2.

use serde::{Deserialize, Serialize};

use crate::pipeline::{CuratedDataset, DatasetStructure};

/// A logarithmically-binned histogram over file lengths in characters.
///
/// Figure 2 of the paper plots file-length frequency on a log-scaled x axis
/// from 10¹ to 10⁸ characters; each bin here covers one decade.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LengthHistogram {
    /// `counts[i]` is the number of files with length in `[10^i, 10^(i+1))`.
    counts: Vec<usize>,
}

impl LengthHistogram {
    /// Number of decades covered (10⁰ up to 10⁸ by default).
    pub const DEFAULT_DECADES: usize = 9;

    /// Builds a histogram over an iterator of file lengths.
    pub fn from_lengths<I: IntoIterator<Item = usize>>(lengths: I) -> Self {
        let mut counts = vec![0usize; Self::DEFAULT_DECADES];
        for len in lengths {
            let decade = if len == 0 {
                0
            } else {
                (len as f64).log10().floor() as usize
            };
            let decade = decade.min(Self::DEFAULT_DECADES - 1);
            counts[decade] += 1;
        }
        Self { counts }
    }

    /// The per-decade counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of files represented.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// `(lower_bound, count)` rows, one per decade.
    pub fn rows(&self) -> Vec<(usize, usize)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (10usize.pow(i as u32), c))
            .collect()
    }

    /// The decade (as a lower bound) with the most files.
    pub fn modal_decade(&self) -> usize {
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap_or((0, &0));
        10usize.pow(idx as u32)
    }
}

/// Row-level summary of a curated dataset, mirroring Table I's columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Policy / dataset name.
    pub name: String,
    /// Number of files ("Size (Rows)").
    pub rows: usize,
    /// Total size in characters (stand-in for "Size (Disk)").
    pub total_chars: usize,
    /// Dataset structure.
    pub structure: DatasetStructure,
    /// Whether the dataset is augmented with generated data.
    pub augmented: bool,
    /// Whether the producing policy checked repository licenses.
    pub open_source_check: bool,
    /// Whether the producing policy checked per-file copyright.
    pub license_copyright_check: bool,
    /// File-length histogram (Figure 2's series for this dataset).
    pub length_histogram: LengthHistogram,
}

impl DatasetSummary {
    /// Builds a summary from a curated dataset and its policy's check flags.
    pub fn from_dataset(
        dataset: &CuratedDataset,
        open_source_check: bool,
        license_copyright_check: bool,
    ) -> Self {
        Self {
            name: dataset.name().to_string(),
            rows: dataset.len(),
            total_chars: dataset.total_chars(),
            structure: dataset.structure(),
            augmented: dataset.augmented(),
            open_source_check,
            license_copyright_check,
            length_histogram: LengthHistogram::from_lengths(
                dataset.files().iter().map(|f| f.char_len()),
            ),
        }
    }

    /// Approximate on-disk size in megabytes (1 char ≈ 1 byte).
    pub fn size_mb(&self) -> f64 {
        self.total_chars as f64 / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CurationConfig, CurationPipeline};
    use gh_sim::{GithubApi, Scraper, ScraperConfig, Universe, UniverseConfig};

    #[test]
    fn histogram_bins_by_decade() {
        let h = LengthHistogram::from_lengths(vec![5, 50, 500, 5_000, 50_000, 5_000_000, 0]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 2); // 5 and 0
        assert_eq!(h.counts()[1], 1); // 50
        assert_eq!(h.counts()[2], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[6], 1);
    }

    #[test]
    fn histogram_clamps_extreme_outliers() {
        let h = LengthHistogram::from_lengths(vec![10usize.pow(12)]);
        assert_eq!(*h.counts().last().unwrap(), 1);
    }

    #[test]
    fn rows_and_modal_decade() {
        let h = LengthHistogram::from_lengths(vec![100, 150, 900, 20]);
        let rows = h.rows();
        assert_eq!(rows[2], (100, 3));
        assert_eq!(h.modal_decade(), 100);
    }

    #[test]
    fn summary_reflects_dataset() {
        let universe = Universe::generate(&UniverseConfig {
            repo_count: 50,
            seed: 8,
            ..Default::default()
        });
        let api = GithubApi::new(&universe);
        let files = Scraper::new(ScraperConfig::default())
            .run(&api)
            .unwrap()
            .files;
        let dataset = CurationPipeline::new(CurationConfig::freeset()).run(files);
        let summary = DatasetSummary::from_dataset(&dataset, true, true);
        assert_eq!(summary.rows, dataset.len());
        assert_eq!(summary.length_histogram.total(), dataset.len());
        assert!(summary.size_mb() > 0.0);
        assert!(summary.open_source_check && summary.license_copyright_check);
    }
}
