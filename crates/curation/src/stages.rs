//! [`CurationStage`] implementations for the paper's four filters plus the
//! prior-work length cap.
//!
//! Each stage wraps one of the reusable filter components
//! ([`LicenseFilter`], [`Deduplicator`], [`SyntaxFilter`],
//! [`CopyrightDetector`]) and adapts it to the batch-in/outcome-out stage
//! interface with provenance-tagged rejections.

use std::io;
use std::sync::Arc;

use verilog::ParsedFile;

use crate::copyright::CopyrightDetector;
use crate::dedup::{DedupConfig, DedupSpillConfig, Deduplicator, StreamingDeduplicator};
use crate::license_filter::LicenseFilter;
use crate::parse_cache::ParseCache;
use crate::stage::{
    stage_names, CurationStage, FileBatch, RejectReason, StageOutcome, StageStream, StageStreaming,
};
use crate::syntax_filter::SyntaxFilter;

/// Drops files from repositories without an accepted license
/// ([`stage_names::LICENSE`]).
#[derive(Debug, Clone, Default)]
pub struct LicenseStage {
    filter: LicenseFilter,
}

impl LicenseStage {
    /// Stage over the paper's accepted-license set.
    pub fn new(filter: LicenseFilter) -> Self {
        Self { filter }
    }

    /// The wrapped filter.
    pub fn filter(&self) -> &LicenseFilter {
        &self.filter
    }
}

impl CurationStage for LicenseStage {
    fn name(&self) -> &str {
        stage_names::LICENSE
    }

    fn apply(&self, batch: FileBatch) -> StageOutcome {
        batch.partition(stage_names::LICENSE, RejectReason::License, |f| {
            self.filter.accepts(f)
        })
    }

    fn batch_invariant(&self) -> bool {
        true
    }
}

/// Drops files longer than a maximum character count
/// ([`stage_names::LENGTH`]) — prior-work policies such as CodeV truncate
/// their corpus this way.
#[derive(Debug, Clone, Copy)]
pub struct LengthCapStage {
    max_chars: usize,
}

impl LengthCapStage {
    /// Stage keeping only files of at most `max_chars` characters.
    pub fn new(max_chars: usize) -> Self {
        Self { max_chars }
    }

    /// The cap in characters.
    pub fn max_chars(&self) -> usize {
        self.max_chars
    }
}

impl CurationStage for LengthCapStage {
    fn name(&self) -> &str {
        stage_names::LENGTH
    }

    fn apply(&self, batch: FileBatch) -> StageOutcome {
        batch.partition(stage_names::LENGTH, RejectReason::LengthCap, |f| {
            f.char_len() <= self.max_chars
        })
    }

    fn batch_invariant(&self) -> bool {
        true
    }
}

/// Removes near-duplicates with MinHash/LSH ([`stage_names::DEDUP`]).
///
/// The keep/drop decision is order-dependent (first occurrence wins) and runs
/// sequentially; the expensive per-file shingling and MinHash signature
/// construction fans out across threads in parallel mode. The stage streams:
/// [`CurationStage::open_stream`] returns a stateful [`DedupStream`] that
/// resolves each pushed batch against the persistent kept-index, so a
/// [`crate::CurationSession`] de-duplicates while the scrape is still in
/// flight. One-shot `apply` is a single-push stream — byte-identical by
/// construction.
#[derive(Debug, Clone)]
pub struct DedupStage {
    dedup: Deduplicator,
    spill: Option<DedupSpillConfig>,
}

impl DedupStage {
    /// Stage with the given de-duplication parameters, fully resident.
    pub fn new(config: DedupConfig) -> Self {
        Self::with_spill(config, None)
    }

    /// Stage whose kept state spills to disk under the given policy (the
    /// outcome is byte-identical to the resident stage for any policy).
    pub fn with_spill(config: DedupConfig, spill: Option<DedupSpillConfig>) -> Self {
        Self {
            dedup: Deduplicator::new(config),
            spill,
        }
    }

    /// The wrapped de-duplicator.
    pub fn deduplicator(&self) -> &Deduplicator {
        &self.dedup
    }

    /// The spill policy, if one is configured.
    pub fn spill_config(&self) -> Option<&DedupSpillConfig> {
        self.spill.as_ref()
    }

    fn open_engine(&self) -> io::Result<StreamingDeduplicator> {
        match &self.spill {
            None => Ok(self.dedup.streaming()),
            Some(policy) => self.dedup.streaming_with_spill(policy),
        }
    }
}

impl CurationStage for DedupStage {
    fn name(&self) -> &str {
        stage_names::DEDUP
    }

    /// One-shot application — a single-push stream.
    ///
    /// # Panics
    ///
    /// Panics if a configured spill policy hits an IO error; the streaming
    /// path ([`CurationStage::open_stream`] → [`StageStream::push`]) surfaces
    /// the same errors as `io::Result` instead.
    fn apply(&self, batch: FileBatch) -> StageOutcome {
        let engine = self.open_engine().expect("dedup spill directory opens");
        DedupStream::new(engine)
            .push(batch)
            .expect("dedup spill IO succeeds")
    }

    fn open_stream(&self) -> io::Result<StageStreaming> {
        Ok(StageStreaming::Stateful(Box::new(DedupStream::new(
            self.open_engine()?,
        ))))
    }
}

/// The stateful streaming form of [`DedupStage`]: a thin adapter mapping the
/// [`StreamingDeduplicator`]'s global-index outcomes back onto each batch's
/// files, with the same rejection provenance text as the one-shot path
/// (duplicate pointers are global indices into the stage's input stream, so
/// a file can be rejected as the duplicate of a file kept batches earlier).
pub struct DedupStream {
    inner: StreamingDeduplicator,
}

impl DedupStream {
    /// Wraps a streaming engine.
    pub fn new(inner: StreamingDeduplicator) -> Self {
        Self { inner }
    }

    /// The engine, for residency inspection.
    pub fn engine(&self) -> &StreamingDeduplicator {
        &self.inner
    }
}

impl StageStream for DedupStream {
    fn push(&mut self, batch: FileBatch) -> io::Result<StageOutcome> {
        let mode = batch.mode();
        let files = batch.into_files();
        let base = self.inner.seen();
        let contents: Vec<&str> = files.iter().map(|f| f.content.as_str()).collect();
        let result = self.inner.push_texts_with_mode(&contents, mode)?;
        // Map the engine's global indices back onto this batch's files.
        let removed_info: std::collections::HashMap<usize, (usize, f64)> = result
            .removed
            .iter()
            .map(|&(dropped, kept, similarity)| (dropped - base, (kept, similarity)))
            .collect();
        let mut outcome = StageOutcome::with_capacity(files.len());
        for (offset, file) in files.into_iter().enumerate() {
            match removed_info.get(&offset) {
                None => outcome.kept.push(file),
                Some(&(kept_index, similarity)) => outcome.reject(
                    file,
                    stage_names::DEDUP,
                    RejectReason::Duplicate,
                    Some(format!(
                        "duplicate of kept file #{kept_index} (jaccard {similarity:.3})"
                    )),
                ),
            }
        }
        Ok(outcome)
    }
}

/// Removes files that fail the syntax check ([`stage_names::SYNTAX`]).
///
/// Each file is lexed and parsed exactly once via [`verilog::ParsedFile`].
/// When a [`ParseCache`] is attached ([`SyntaxStage::with_cache`]), the
/// parsed form of every surviving file is deposited there so a downstream
/// [`crate::LintStage`] sharing the cache lints without re-parsing — the
/// pipeline's parse-once contract.
#[derive(Debug, Clone, Default)]
pub struct SyntaxStage {
    filter: SyntaxFilter,
    cache: Option<Arc<ParseCache>>,
}

impl SyntaxStage {
    /// Stage over the standard syntax checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage that deposits the parsed form of every kept file into `cache`.
    pub fn with_cache(cache: Arc<ParseCache>) -> Self {
        Self {
            filter: SyntaxFilter::new(),
            cache: Some(cache),
        }
    }

    /// Whether the file passes; on success the parse is kept for reuse.
    fn passes(&self, content: &str) -> bool {
        let Ok(parsed) = ParsedFile::parse(content) else {
            return false;
        };
        if self.filter.checker().check_parsed(&parsed).is_err() {
            return false;
        }
        if let Some(cache) = &self.cache {
            cache.insert(Arc::new(parsed));
        }
        true
    }
}

impl CurationStage for SyntaxStage {
    fn name(&self) -> &str {
        stage_names::SYNTAX
    }

    fn apply(&self, batch: FileBatch) -> StageOutcome {
        batch.partition(stage_names::SYNTAX, RejectReason::Syntax, |f| {
            self.passes(&f.content)
        })
    }

    fn batch_invariant(&self) -> bool {
        true
    }
}

/// Removes files whose headers carry proprietary-copyright language
/// ([`stage_names::COPYRIGHT`]). Rejections record the matched keywords and
/// parsed holder as detail.
#[derive(Debug, Clone, Default)]
pub struct CopyrightStage {
    detector: CopyrightDetector,
}

impl CopyrightStage {
    /// Stage over the given detector.
    pub fn new(detector: CopyrightDetector) -> Self {
        Self { detector }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &CopyrightDetector {
        &self.detector
    }
}

impl CurationStage for CopyrightStage {
    fn name(&self) -> &str {
        stage_names::COPYRIGHT
    }

    fn apply(&self, batch: FileBatch) -> StageOutcome {
        // Scan in parallel (order-stable), partition serially so rejections
        // keep their detail.
        let findings = batch.map_files(|f| self.detector.scan(&f.content));
        let mut outcome = StageOutcome::with_capacity(batch.len());
        for (file, finding) in batch.into_files().into_iter().zip(findings) {
            match finding {
                None => outcome.kept.push(file),
                Some(finding) => {
                    let detail = match &finding.holder {
                        Some(holder) => {
                            format!("matched {:?}, holder {holder}", finding.matched_keywords)
                        }
                        None => format!("matched {:?}", finding.matched_keywords),
                    };
                    outcome.reject(
                        file,
                        stage_names::COPYRIGHT,
                        RejectReason::Copyright,
                        Some(detail),
                    );
                }
            }
        }
        outcome
    }

    fn batch_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::ExecutionMode;
    use gh_sim::{ExtractedFile, License};

    fn file(i: usize, license: License, content: &str) -> ExtractedFile {
        ExtractedFile {
            repo_id: i as u64,
            repo_full_name: format!("o/r{i}"),
            owner: "o".into(),
            repo_license: license,
            created_year: 2020,
            path: format!("f{i}.v"),
            content: content.into(),
        }
    }

    fn batch(files: Vec<ExtractedFile>) -> FileBatch {
        FileBatch::new(files, ExecutionMode::Parallel)
    }

    #[test]
    fn license_stage_tags_rejections() {
        let stage = LicenseStage::new(LicenseFilter::paper_default());
        let outcome = stage.apply(batch(vec![
            file(0, License::Mit, "module m; endmodule"),
            file(1, License::None, "module m; endmodule"),
            file(2, License::Proprietary, "module m; endmodule"),
        ]));
        assert_eq!(outcome.kept.len(), 1);
        assert_eq!(outcome.rejected.len(), 2);
        assert!(outcome
            .rejected
            .iter()
            .all(|r| r.reason == RejectReason::License));
        assert_eq!(stage.name(), "license filter");
    }

    #[test]
    fn length_stage_caps() {
        let stage = LengthCapStage::new(10);
        let outcome = stage.apply(batch(vec![
            file(0, License::Mit, "short"),
            file(1, License::Mit, "much longer than ten characters"),
        ]));
        assert_eq!(outcome.kept.len(), 1);
        assert_eq!(outcome.rejected[0].reason, RejectReason::LengthCap);
        assert_eq!(stage.max_chars(), 10);
    }

    #[test]
    fn dedup_stage_records_duplicate_provenance() {
        let stage = DedupStage::new(DedupConfig::default());
        let body =
            "module alu(input [3:0] a, input [3:0] b, output [3:0] y); assign y = a + b; endmodule";
        let outcome = stage.apply(batch(vec![
            file(0, License::Mit, body),
            file(1, License::Mit, body),
        ]));
        assert_eq!(outcome.kept.len(), 1);
        assert_eq!(outcome.rejected.len(), 1);
        let r = &outcome.rejected[0];
        assert_eq!(r.reason, RejectReason::Duplicate);
        assert!(r
            .detail
            .as_deref()
            .unwrap()
            .contains("duplicate of kept file #0"));
    }

    #[test]
    fn syntax_stage_drops_broken_files() {
        let stage = SyntaxStage::new();
        let outcome = stage.apply(batch(vec![
            file(
                0,
                License::Mit,
                "module m(input a, output y); assign y = a; endmodule",
            ),
            file(1, License::Mit, "not verilog"),
        ]));
        assert_eq!(outcome.kept.len(), 1);
        assert_eq!(outcome.rejected[0].reason, RejectReason::Syntax);
    }

    #[test]
    fn copyright_stage_carries_match_detail() {
        let stage = CopyrightStage::new(CopyrightDetector::new());
        let outcome = stage.apply(batch(vec![
            file(0, License::Mit, "// Copyright (C) 2019 Intel Corporation. All rights reserved.\n// PROPRIETARY and CONFIDENTIAL.\nmodule m; endmodule"),
            file(1, License::Mit, "module m; endmodule"),
        ]));
        assert_eq!(outcome.kept.len(), 1);
        let r = &outcome.rejected[0];
        assert_eq!(r.reason, RejectReason::Copyright);
        let detail = r.detail.as_deref().unwrap();
        assert!(detail.contains("proprietary"), "detail: {detail}");
        assert!(detail.contains("Intel"), "detail: {detail}");
    }
}
