//! Property-based tests over the stage engine: for *any* subset of stages,
//! any length cap and any universe seed, the funnel must narrow
//! monotonically, every input file must be conserved as either a survivor or
//! a provenance-tagged rejection, and parallel execution must be
//! indistinguishable from serial execution.

use curation::{
    CurationConfig, CurationPipeline, CurationStage, ExecutionMode, FileBatch, RejectReason,
    StageOutcome,
};
use gh_sim::{ExtractedFile, GithubApi, Scraper, ScraperConfig, Universe, UniverseConfig};
use proptest::prelude::*;

fn corpus(repos: usize, seed: u64) -> Vec<ExtractedFile> {
    let universe = Universe::generate(&UniverseConfig {
        repo_count: repos,
        seed,
        ..Default::default()
    });
    let api = GithubApi::new(&universe);
    Scraper::new(ScraperConfig::default())
        .run(&api)
        .expect("scrape")
        .files
}

/// An arbitrary stage-subset policy: every toggle combination plus an
/// optional length cap.
fn policy_strategy() -> impl Strategy<Value = CurationConfig> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(0usize), 200usize..2_000],
    )
        .prop_map(|(license, copyright, dedup, syntax, cap)| {
            let mut config = CurationConfig::unfiltered("Arbitrary");
            config.check_repository_license = license;
            config.check_file_copyright = copyright;
            config.deduplicate = dedup;
            config.check_syntax = syntax;
            config.max_file_chars = (cap > 0).then_some(cap);
            config
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn funnel_is_monotone_for_any_stage_subset(
        policy in policy_strategy(),
        repos in 5usize..20,
        seed in any::<u64>(),
    ) {
        let files = corpus(repos, seed);
        let initial = files.len();
        let dataset = CurationPipeline::new(policy).run(files);
        let funnel = dataset.funnel();
        prop_assert_eq!(funnel.initial(), initial);
        prop_assert!(funnel.is_monotone(), "funnel not monotone: {:?}", funnel);
        // Explicitly: each stage's survivor count never exceeds its input.
        let mut previous = initial;
        for stage in funnel.stages() {
            prop_assert!(stage.surviving <= previous,
                "stage {} grew the corpus ({} -> {})", stage.stage, previous, stage.surviving);
            previous = stage.surviving;
        }
        prop_assert_eq!(funnel.final_count(), dataset.len());
    }

    #[test]
    fn rejection_provenance_is_conserved(
        policy in policy_strategy(),
        repos in 5usize..20,
        seed in any::<u64>(),
    ) {
        let files = corpus(repos, seed);
        let initial = files.len();
        let enabled_license = policy.check_repository_license;
        let enabled_copyright = policy.check_file_copyright;
        let enabled_dedup = policy.deduplicate;
        let enabled_syntax = policy.check_syntax;
        let enabled_cap = policy.max_file_chars.is_some();
        let dataset = CurationPipeline::new(policy).run(files);

        // kept + all rejects == initial.
        prop_assert_eq!(dataset.len() + dataset.rejects().len(), initial);

        // Rejects only carry reasons whose stage actually ran.
        for reject in dataset.rejects() {
            let allowed = match reject.reason {
                RejectReason::License => enabled_license,
                RejectReason::LengthCap => enabled_cap,
                RejectReason::Duplicate => enabled_dedup,
                RejectReason::Syntax => enabled_syntax,
                RejectReason::Copyright => enabled_copyright,
            };
            prop_assert!(allowed, "reason {:?} from disabled stage {}", reject.reason, reject.stage);
        }

        // Per-stage removals in the funnel equal the per-stage reject counts.
        for stage in dataset.funnel().stages() {
            let tagged = dataset
                .rejects()
                .iter()
                .filter(|r| r.stage == stage.stage)
                .count();
            prop_assert_eq!(stage.removed(), tagged,
                "funnel says stage {} removed {} but {} rejects are tagged with it",
                &stage.stage, stage.removed(), tagged);
        }
    }

    #[test]
    fn parallel_equals_serial_for_any_policy(
        policy in policy_strategy(),
        repos in 5usize..15,
        seed in any::<u64>(),
    ) {
        let files = corpus(repos, seed);
        let serial = CurationPipeline::new(policy.clone())
            .with_mode(ExecutionMode::Serial)
            .run(files.clone());
        let parallel = CurationPipeline::new(policy)
            .with_mode(ExecutionMode::Parallel)
            .run(files);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn streamed_batches_equal_one_shot_for_any_split(
        policy in policy_strategy(),
        repos in 5usize..15,
        seed in any::<u64>(),
        batch_size in 1usize..40,
    ) {
        let files = corpus(repos, seed);
        let pipeline = CurationPipeline::new(policy);
        let one_shot = pipeline.run(files.clone());
        // Feed the same corpus through a streaming session in arbitrary
        // fixed-size batches (including a ragged final batch and, when
        // batch_size exceeds the corpus, a single batch).
        let mut session = pipeline.session();
        for chunk in files.chunks(batch_size) {
            session.push(chunk.to_vec());
        }
        let streamed = session.finish();
        prop_assert_eq!(&streamed, &one_shot);
        prop_assert_eq!(format!("{streamed:?}"), format!("{one_shot:?}"));
    }

    #[test]
    fn streamed_per_repo_batches_equal_one_shot(
        repos in 5usize..15,
        seed in any::<u64>(),
    ) {
        // The shape the fetch engine actually delivers: one batch per
        // repository, under the full FreeSet policy.
        let files = corpus(repos, seed);
        let pipeline = CurationPipeline::new(CurationConfig::freeset());
        let one_shot = pipeline.run(files.clone());
        let mut session = pipeline.session();
        prop_assert!(session.streaming_stage_count() >= 1,
            "the license stage must stream ahead of dedup");
        let mut remaining = files.as_slice();
        while !remaining.is_empty() {
            let repo_id = remaining[0].repo_id;
            let split = remaining
                .iter()
                .position(|f| f.repo_id != repo_id)
                .unwrap_or(remaining.len());
            let (batch, rest) = remaining.split_at(split);
            session.push(batch.to_vec());
            remaining = rest;
        }
        prop_assert_eq!(session.pushed(), files.len());
        let streamed = session.finish();
        prop_assert_eq!(&streamed, &one_shot);
    }
}

/// A growing "stage" violates the filter contract; the monotonicity check
/// must catch it (regression guard for the `is_monotone` invariant itself).
#[test]
fn monotonicity_check_catches_growing_stages() {
    struct Duplicator2x;

    impl CurationStage for Duplicator2x {
        fn name(&self) -> &str {
            "doubler"
        }

        fn apply(&self, batch: FileBatch) -> StageOutcome {
            let mut files = batch.into_files();
            let copies: Vec<ExtractedFile> = files.clone();
            files.extend(copies);
            StageOutcome::keep_all(files)
        }
    }

    let files = corpus(5, 77);
    let dataset = CurationPipeline::new(CurationConfig::unfiltered("Growing"))
        .with_stage(Box::new(Duplicator2x))
        .run(files);
    assert!(!dataset.funnel().is_monotone());
}
