//! Property-based tests over the stage engine: for *any* subset of stages,
//! any length cap and any universe seed, the funnel must narrow
//! monotonically, every input file must be conserved as either a survivor or
//! a provenance-tagged rejection, and parallel execution must be
//! indistinguishable from serial execution.

use curation::{
    CurationConfig, CurationPipeline, CurationStage, ExecutionMode, FileBatch, RejectReason,
    StageOutcome,
};
use gh_sim::{ExtractedFile, GithubApi, Scraper, ScraperConfig, Universe, UniverseConfig};
use proptest::prelude::*;

fn corpus(repos: usize, seed: u64) -> Vec<ExtractedFile> {
    let universe = Universe::generate(&UniverseConfig {
        repo_count: repos,
        seed,
        ..Default::default()
    });
    let api = GithubApi::new(&universe);
    Scraper::new(ScraperConfig::default())
        .run(&api)
        .expect("scrape")
        .files
}

/// An arbitrary stage-subset policy: every toggle combination plus an
/// optional length cap and an optional lint policy (default or strict).
fn policy_strategy() -> impl Strategy<Value = CurationConfig> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(0usize), 200usize..2_000],
        prop_oneof![
            Just(None),
            Just(Some(curation::LintRejectPolicy::default())),
            Just(Some(curation::LintRejectPolicy::strict())),
        ],
    )
        .prop_map(|(license, copyright, dedup, syntax, cap, lint)| {
            let mut config = CurationConfig::unfiltered("Arbitrary");
            config.check_repository_license = license;
            config.check_file_copyright = copyright;
            config.deduplicate = dedup;
            config.check_syntax = syntax;
            config.lint = lint;
            config.max_file_chars = (cap > 0).then_some(cap);
            config
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn funnel_is_monotone_for_any_stage_subset(
        policy in policy_strategy(),
        repos in 5usize..20,
        seed in any::<u64>(),
    ) {
        let files = corpus(repos, seed);
        let initial = files.len();
        let dataset = CurationPipeline::new(policy).run(files);
        let funnel = dataset.funnel();
        prop_assert_eq!(funnel.initial(), initial);
        prop_assert!(funnel.is_monotone(), "funnel not monotone: {:?}", funnel);
        // Explicitly: each stage's survivor count never exceeds its input.
        let mut previous = initial;
        for stage in funnel.stages() {
            prop_assert!(stage.surviving <= previous,
                "stage {} grew the corpus ({} -> {})", stage.stage, previous, stage.surviving);
            previous = stage.surviving;
        }
        prop_assert_eq!(funnel.final_count(), dataset.len());
    }

    #[test]
    fn rejection_provenance_is_conserved(
        policy in policy_strategy(),
        repos in 5usize..20,
        seed in any::<u64>(),
    ) {
        let files = corpus(repos, seed);
        let initial = files.len();
        let enabled_license = policy.check_repository_license;
        let enabled_copyright = policy.check_file_copyright;
        let enabled_dedup = policy.deduplicate;
        let enabled_syntax = policy.check_syntax;
        let enabled_lint = policy.lint.is_some();
        let enabled_cap = policy.max_file_chars.is_some();
        let dataset = CurationPipeline::new(policy).run(files);

        // kept + all rejects == initial.
        prop_assert_eq!(dataset.len() + dataset.rejects().len(), initial);

        // Rejects only carry reasons whose stage actually ran.
        for reject in dataset.rejects() {
            let allowed = match reject.reason {
                RejectReason::License => enabled_license,
                RejectReason::LengthCap => enabled_cap,
                RejectReason::Duplicate => enabled_dedup,
                RejectReason::Syntax => enabled_syntax,
                RejectReason::Lint => enabled_lint,
                RejectReason::Copyright => enabled_copyright,
            };
            prop_assert!(allowed, "reason {:?} from disabled stage {}", reject.reason, reject.stage);
        }

        // Per-stage removals in the funnel equal the per-stage reject counts.
        for stage in dataset.funnel().stages() {
            let tagged = dataset
                .rejects()
                .iter()
                .filter(|r| r.stage == stage.stage)
                .count();
            prop_assert_eq!(stage.removed(), tagged,
                "funnel says stage {} removed {} but {} rejects are tagged with it",
                &stage.stage, stage.removed(), tagged);
        }
    }

    #[test]
    fn parallel_equals_serial_for_any_policy(
        policy in policy_strategy(),
        repos in 5usize..15,
        seed in any::<u64>(),
    ) {
        let files = corpus(repos, seed);
        let serial = CurationPipeline::new(policy.clone())
            .with_mode(ExecutionMode::Serial)
            .run(files.clone());
        let parallel = CurationPipeline::new(policy)
            .with_mode(ExecutionMode::Parallel)
            .run(files);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn streamed_batches_equal_one_shot_for_any_split(
        policy in policy_strategy(),
        repos in 5usize..15,
        seed in any::<u64>(),
        batch_size in 1usize..40,
        parallel in any::<bool>(),
    ) {
        let files = corpus(repos, seed);
        let mode = if parallel { ExecutionMode::Parallel } else { ExecutionMode::Serial };
        let pipeline = CurationPipeline::new(policy).with_mode(mode);
        let one_shot = pipeline.run(files.clone());
        // Feed the same corpus through a streaming session in arbitrary
        // fixed-size batches (including a ragged final batch and, when
        // batch_size exceeds the corpus, a single batch).
        let mut session = pipeline.session();
        for chunk in files.chunks(batch_size) {
            session.push(chunk.to_vec()).expect("push succeeds");
        }
        let streamed = session.finish().expect("finish succeeds");
        prop_assert_eq!(&streamed, &one_shot);
        prop_assert_eq!(format!("{streamed:?}"), format!("{one_shot:?}"));
    }

    #[test]
    fn streamed_per_repo_batches_equal_one_shot(
        repos in 5usize..15,
        seed in any::<u64>(),
    ) {
        // The shape the fetch engine actually delivers: one batch per
        // repository, under the full FreeSet policy.
        let files = corpus(repos, seed);
        let pipeline = CurationPipeline::new(CurationConfig::freeset());
        let one_shot = pipeline.run(files.clone());
        let mut session = pipeline.session();
        prop_assert_eq!(session.streaming_stage_count(), 5,
            "every FreeSet stage — dedup included — must stream");
        let mut remaining = files.as_slice();
        while !remaining.is_empty() {
            let repo_id = remaining[0].repo_id;
            let split = remaining
                .iter()
                .position(|f| f.repo_id != repo_id)
                .unwrap_or(remaining.len());
            let (batch, rest) = remaining.split_at(split);
            session.push(batch.to_vec()).expect("push succeeds");
            remaining = rest;
        }
        prop_assert_eq!(session.pushed(), files.len());
        let streamed = session.finish().expect("finish succeeds");
        prop_assert_eq!(&streamed, &one_shot);
    }

    #[test]
    fn lint_stage_is_batch_and_mode_invariant(
        rotation in 0usize..40,
        batch_size in 1usize..13,
        strict in any::<bool>(),
    ) {
        // A corpus salted with every planted semantic defect plus clean
        // files, in an arbitrary rotation: a lint-only pipeline must produce
        // byte-identical output serial vs parallel and one-shot vs streamed
        // under any batch split.
        let clean =
            "module ok(input a, input b, output y); assign y = a & b; endmodule";
        let mut files: Vec<ExtractedFile> = gh_sim::DefectKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                handmade_file(
                    i,
                    gh_sim::License::Mit,
                    &kind.source(&format!("bad_{}", kind.tag())),
                )
            })
            .chain((100..108).map(|i| handmade_file(i, gh_sim::License::Mit, clean)))
            .collect();
        let pivot = rotation % files.len();
        files.rotate_left(pivot);

        let mut config = CurationConfig::unfiltered("LintOnly");
        config.lint = Some(if strict {
            curation::LintRejectPolicy::strict()
        } else {
            curation::LintRejectPolicy::default()
        });
        let serial = CurationPipeline::new(config.clone())
            .with_mode(ExecutionMode::Serial)
            .run(files.clone());
        let parallel = CurationPipeline::new(config.clone())
            .with_mode(ExecutionMode::Parallel)
            .run(files.clone());
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));

        let pipeline = CurationPipeline::new(config);
        let mut session = pipeline.session();
        prop_assert_eq!(session.streaming_stage_count(), 1,
            "the lint stage is batch-invariant and must stream");
        for chunk in files.chunks(batch_size) {
            session.push(chunk.to_vec()).expect("push succeeds");
        }
        let streamed = session.finish().expect("finish succeeds");
        prop_assert_eq!(&streamed, &serial);
        prop_assert_eq!(format!("{streamed:?}"), format!("{serial:?}"));

        // The funnel's per-rule categories are exactly the reject list's
        // category multiset, and every planted defect of rejectable
        // severity is caught.
        let lint_count = streamed.rejects_for(RejectReason::Lint).count();
        let stage = streamed.funnel().stage("lint filter").expect("lint ran");
        prop_assert_eq!(stage.removed(), lint_count);
        let tallied: usize = stage.categories.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(tallied, lint_count);
        if strict {
            prop_assert_eq!(lint_count, gh_sim::DefectKind::ALL.len());
        } else {
            prop_assert!(lint_count > 0, "error-severity defects must be rejected");
        }
        for (category, count) in &stage.categories {
            let matching = streamed
                .rejects_for(RejectReason::Lint)
                .filter(|r| r.category.as_deref() == Some(category.as_str()))
                .count();
            prop_assert_eq!(matching, *count);
        }
    }
}

fn handmade_file(i: usize, license: gh_sim::License, content: &str) -> ExtractedFile {
    ExtractedFile {
        repo_id: i as u64,
        repo_full_name: format!("o/r{i}"),
        owner: "o".into(),
        repo_license: license,
        created_year: 2020,
        path: format!("f{i}.v"),
        content: content.into(),
    }
}

#[test]
fn freeset_session_streams_every_stage_including_dedup() {
    let pipeline = CurationPipeline::new(CurationConfig::freeset());
    let session = pipeline.session();
    assert_eq!(pipeline.stage_names().len(), 5);
    assert_eq!(
        session.streaming_stage_count(),
        5,
        "license, dedup, syntax, lint and copyright must all run per batch"
    );
}

/// An order-dependent custom stage with no streaming form: keeps only the
/// first `N` files it ever sees, so its verdicts depend on everything before
/// the batch — the session must defer it.
struct TakeFirst(usize);

impl CurationStage for TakeFirst {
    fn name(&self) -> &str {
        "take-first"
    }

    fn apply(&self, batch: FileBatch) -> StageOutcome {
        let mut outcome = StageOutcome::default();
        for (i, file) in batch.into_files().into_iter().enumerate() {
            if i < self.0 {
                outcome.kept.push(file);
            } else {
                outcome.reject(file, "take-first", RejectReason::LengthCap, None);
            }
        }
        outcome
    }
}

#[test]
fn non_streamable_custom_stage_before_dedup_defers_the_rest() {
    // Stage order: license (streams) → take-first (cannot stream) → dedup.
    // The split must land on take-first, and dedup — although streamable —
    // must be deferred behind it, with output still equal to one-shot.
    let mut config = CurationConfig::unfiltered("CustomOrder");
    config.check_repository_license = true;
    let files = corpus(8, 99);
    let build = || {
        CurationPipeline::new(config.clone())
            .with_stage(Box::new(TakeFirst(25)))
            .with_stage(Box::new(curation::DedupStage::new(
                curation::DedupConfig::default(),
            )))
    };
    let pipeline = build();
    let one_shot = pipeline.run(files.clone());
    let mut session = pipeline.session();
    assert_eq!(
        session.streaming_stage_count(),
        1,
        "only the license stage may stream ahead of the order-dependent custom stage"
    );
    for chunk in files.chunks(7) {
        session.push(chunk.to_vec()).expect("push succeeds");
    }
    let streamed = session.finish().expect("finish succeeds");
    assert_eq!(streamed, one_shot);
    assert!(one_shot.funnel().stage("take-first").is_some());
    assert!(one_shot.len() <= 25);
}

#[test]
fn empty_batches_between_non_empty_ones_are_neutral() {
    let files = corpus(8, 41);
    let pipeline = CurationPipeline::new(CurationConfig::freeset());
    let one_shot = pipeline.run(files.clone());
    let mut session = pipeline.session();
    session.push(vec![]).expect("push succeeds");
    let mid = files.len() / 2;
    session.push(files[..mid].to_vec()).expect("push succeeds");
    session.push(vec![]).expect("push succeeds");
    session.push(vec![]).expect("push succeeds");
    session.push(files[mid..].to_vec()).expect("push succeeds");
    session.push(vec![]).expect("push succeeds");
    assert_eq!(session.pushed(), files.len());
    let streamed = session.finish().expect("finish succeeds");
    assert_eq!(streamed, one_shot);
    assert_eq!(format!("{streamed:?}"), format!("{one_shot:?}"));
}

#[test]
fn batches_after_total_rejection_still_stream_and_dedup() {
    let body =
        "module alu(input [3:0] a, input [3:0] b, output [3:0] y); assign y = a + b; endmodule";
    // Batch 1 is wiped out by the license filter; batch 2 must still reach
    // the (stateful) dedup stream, and its own duplicate must point at the
    // first *kept* file — not at anything from the rejected batch.
    let rejected_batch: Vec<ExtractedFile> = (0..4)
        .map(|i| handmade_file(i, gh_sim::License::Proprietary, body))
        .collect();
    let kept_batch: Vec<ExtractedFile> = (4..7)
        .map(|i| handmade_file(i, gh_sim::License::Mit, body))
        .collect();
    let all: Vec<ExtractedFile> = rejected_batch
        .iter()
        .chain(kept_batch.iter())
        .cloned()
        .collect();
    let pipeline = CurationPipeline::new(CurationConfig::freeset());
    let one_shot = pipeline.run(all);
    let mut session = pipeline.session();
    session.push(rejected_batch).expect("push succeeds");
    session.push(kept_batch).expect("push succeeds");
    let streamed = session.finish().expect("finish succeeds");
    assert_eq!(streamed, one_shot);
    assert_eq!(streamed.len(), 1, "only the first licensed copy survives");
    let dupes: Vec<_> = streamed.rejects_for(RejectReason::Duplicate).collect();
    assert_eq!(dupes.len(), 2);
    for dupe in dupes {
        assert_eq!(
            dupe.detail.as_deref(),
            Some("duplicate of kept file #0 (jaccard 1.000)"),
            "duplicates must reference the dedup stream's first kept file"
        );
    }
}

/// A growing "stage" violates the filter contract; the monotonicity check
/// must catch it (regression guard for the `is_monotone` invariant itself).
#[test]
fn monotonicity_check_catches_growing_stages() {
    struct Duplicator2x;

    impl CurationStage for Duplicator2x {
        fn name(&self) -> &str {
            "doubler"
        }

        fn apply(&self, batch: FileBatch) -> StageOutcome {
            let mut files = batch.into_files();
            let copies: Vec<ExtractedFile> = files.clone();
            files.extend(copies);
            StageOutcome::keep_all(files)
        }
    }

    let files = corpus(5, 77);
    let dataset = CurationPipeline::new(CurationConfig::unfiltered("Growing"))
        .with_stage(Box::new(Duplicator2x))
        .run(files);
    assert!(!dataset.funnel().is_monotone());
}
