//! Property-based tests over the bounded-memory de-duplication engine: for
//! *any* shard count, resident-shard budget, batch split, execution mode and
//! universe seed, the spill-enabled streaming engine must be byte-identical
//! to the fully-resident in-memory engine while actually honouring its
//! residency budget — and the exact-hash pre-dedup fast path must never
//! change the kept set.

use curation::{DedupConfig, DedupOutcome, DedupSpillConfig, Deduplicator, ExecutionMode};
use gh_sim::{GithubApi, Scraper, ScraperConfig, Universe, UniverseConfig};
use proptest::prelude::*;

/// A scraped bank's contents: realistic Verilog with the universe's planted
/// forks and near-duplicates.
fn corpus_texts(repos: usize, seed: u64) -> Vec<String> {
    let universe = Universe::generate(&UniverseConfig {
        repo_count: repos,
        seed,
        ..Default::default()
    });
    let api = GithubApi::new(&universe);
    Scraper::new(ScraperConfig::default())
        .run(&api)
        .expect("scrape")
        .files
        .into_iter()
        .map(|f| f.content)
        .collect()
}

fn mode_of(parallel: bool) -> ExecutionMode {
    if parallel {
        ExecutionMode::Parallel
    } else {
        ExecutionMode::Serial
    }
}

fn push_chunked(
    mut stream: curation::StreamingDeduplicator,
    texts: &[String],
    batch: usize,
    mode: ExecutionMode,
) -> (DedupOutcome, curation::StreamingDedupStats) {
    let mut merged = DedupOutcome::default();
    for chunk in texts.chunks(batch.max(1)) {
        let outcome = stream
            .push_texts_with_mode(chunk, mode)
            .expect("spill IO succeeds");
        merged.kept.extend(outcome.kept);
        merged.removed.extend(outcome.removed);
    }
    (merged, stream.stats())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The tentpole invariant: spilling is a memory policy, not a semantics
    /// change. Any (shards, budget, batch split, mode, seed) must reproduce
    /// the in-memory one-shot outcome byte for byte, with peak residency
    /// inside the budget.
    #[test]
    fn spilled_streaming_is_byte_identical_to_the_resident_engine(
        repos in 4usize..14,
        seed in any::<u64>(),
        shards in 1usize..24,
        budget in 1usize..6,
        batch in 1usize..40,
        parallel in any::<bool>(),
    ) {
        let texts = corpus_texts(repos, seed);
        let dedup = Deduplicator::new(DedupConfig::default());
        let reference = dedup.dedup_texts_with_mode(&texts, ExecutionMode::Parallel);
        let spill = DedupSpillConfig { shards, resident_shards: budget, spill_dir: None };
        let (outcome, stats) = push_chunked(
            dedup.streaming_with_spill(&spill).expect("spill engine opens"),
            &texts,
            batch,
            mode_of(parallel),
        );
        prop_assert_eq!(
            &outcome, &reference,
            "spilled outcome diverged: {} shards, budget {}, batch {}, parallel {}",
            shards, budget, batch, parallel
        );
        prop_assert!(
            stats.peak_resident_shards <= budget.min(shards),
            "peak resident shards {} exceeded budget {} ({} shards)",
            stats.peak_resident_shards, budget, shards
        );
        prop_assert!(stats.resident_kept_hashes <= stats.kept_hashes);
        if budget < shards && stats.kept_docs > shards {
            // A genuinely bounded run must have exercised the spill path.
            prop_assert!(stats.shard_spills > 0, "bounded run never spilled");
        }
    }

    /// The exact-hash fast path replays the first occurrence's resolution
    /// for byte-identical (post comment-strip) repeats — disabling it must
    /// change nothing but the amount of signature work performed.
    #[test]
    fn exact_prededup_never_changes_the_kept_set(
        repos in 4usize..14,
        seed in any::<u64>(),
        batch in 1usize..40,
        parallel in any::<bool>(),
    ) {
        let texts = corpus_texts(repos, seed);
        let mode = mode_of(parallel);
        let with = Deduplicator::new(DedupConfig::default());
        let without = Deduplicator::new(DedupConfig {
            exact_prededup: false,
            ..Default::default()
        });
        let (fast, fast_stats) = push_chunked(with.streaming(), &texts, batch, mode);
        let (slow, slow_stats) = push_chunked(without.streaming(), &texts, batch, mode);
        prop_assert_eq!(&fast, &slow, "exact-hash fast path changed the outcome");
        prop_assert_eq!(slow_stats.exact_hits, 0);
        // The fast path never does *more* signature work than the full path.
        prop_assert!(fast_stats.pushed_hashes <= slow_stats.pushed_hashes);
        prop_assert_eq!(fast_stats.kept_hashes, slow_stats.kept_hashes);
    }
}
