//! The pipeline's parse-once contract, asserted with the lexer's global
//! pass counter: running the syntax filter and the lint stage together
//! performs exactly one lex + parse per file, and the funnel output is
//! byte-identical across execution modes and batch splits.
//!
//! This file deliberately contains a single `#[test]` — the counter
//! ([`verilog::lex_passes`]) is process-global, and integration-test
//! binaries run their tests in parallel threads. One test per binary makes
//! the deltas exact.

use curation::{CurationConfig, CurationPipeline, ExecutionMode, LintRejectPolicy};
use gh_sim::{DefectKind, ExtractedFile, License};
use verilog::lex_passes;

fn file(i: usize, content: String) -> ExtractedFile {
    ExtractedFile {
        repo_id: i as u64,
        repo_full_name: format!("o/r{i}"),
        owner: "o".into(),
        repo_license: License::Mit,
        created_year: 2021,
        path: format!("f{i}.v"),
        content,
    }
}

/// A corpus mixing clean files, every planted defect (some rejected by the
/// lint stage, some kept), files that fail the syntax check and files that
/// do not lex at all.
fn corpus() -> Vec<ExtractedFile> {
    let mut files = Vec::new();
    for i in 0..6 {
        files.push(file(
            i,
            format!(
                "module clean_{i}(input a, input b, output y);\nassign y = a & b;\nendmodule\n"
            ),
        ));
    }
    for (j, kind) in DefectKind::ALL.into_iter().enumerate() {
        files.push(file(100 + j, kind.source(&format!("bad_{}", kind.tag()))));
    }
    files.push(file(200, "module broken(".into())); // parse error
    files.push(file(201, "not verilog at all".into())); // parse error
    files.push(file(202, "// comment only\n".into())); // parses, no modules
    files.push(file(203, "module m; \"unterminated".into())); // lex error
    files
}

/// Syntax + lint enabled, nothing upstream that would drop files — every
/// input file reaches the syntax stage.
fn config() -> CurationConfig {
    let mut config = CurationConfig::unfiltered("ParseOnce");
    config.check_syntax = true;
    config.lint = Some(LintRejectPolicy::default());
    config
}

#[test]
fn syntax_and_lint_together_lex_each_file_exactly_once() {
    let files = corpus();
    let total = files.len();

    // Serial one-shot run: the syntax stage lexes each incoming file once;
    // the lint stage reuses those parses from the shared cache, so the
    // global pass counter advances by exactly the file count.
    let before = lex_passes();
    let serial = CurationPipeline::new(config()).serial().run(files.clone());
    let serial_passes = lex_passes() - before;
    assert_eq!(
        serial_passes as usize, total,
        "expected one lex pass per file, got {serial_passes} for {total} files"
    );

    // Same contract in parallel mode.
    let before = lex_passes();
    let parallel = CurationPipeline::new(config())
        .with_mode(ExecutionMode::Parallel)
        .run(files.clone());
    let parallel_passes = lex_passes() - before;
    assert_eq!(parallel_passes as usize, total);

    // Same contract when the corpus arrives as a stream of batches.
    let split = total / 2;
    let before = lex_passes();
    let pipeline = CurationPipeline::new(config());
    let mut session = pipeline.session();
    session
        .push(files[..split].to_vec())
        .expect("push succeeds");
    session
        .push(files[split..].to_vec())
        .expect("push succeeds");
    let streamed = session.finish().expect("finish succeeds");
    let streamed_passes = lex_passes() - before;
    assert_eq!(streamed_passes as usize, total);

    // All three runs produce byte-identical output: files, funnel and
    // rejection provenance.
    assert_eq!(serial, parallel);
    assert_eq!(serial, streamed);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    assert_eq!(format!("{serial:?}"), format!("{streamed:?}"));

    // Sanity on the funnel shape: the syntax stage dropped the four
    // non-parsing/module-free files, and the lint stage rejected the
    // error-severity defects but no parse failures (those never reach it).
    let funnel = serial.funnel();
    assert_eq!(funnel.initial(), total);
    assert_eq!(funnel.after("syntax filter"), total - 4);
    assert!(funnel.after("lint filter") < funnel.after("syntax filter"));
    assert!(serial
        .rejects()
        .iter()
        .all(|r| r.category.as_deref() != Some("parse-error")));
}
