//! The hardware copyright-infringement benchmark (§III-A, Figure 3).
//!
//! ```text
//! cargo run --release --example copyright_audit [--full]
//! ```
//!
//! Builds the copyright-protected reference set by scanning the scraped
//! corpus, trains each base/fine-tuned model pair of the paper's Figure 3
//! under its own curation policy, and prints the measured violation rates
//! next to the paper's.

use free_fair_hw::copyright_bench::BenchmarkConfig;
use free_fair_hw::freeset::config::ExperimentScale;
use free_fair_hw::freeset::experiments::fig3::Fig3Experiment;
use free_fair_hw::freeset::report::to_json_string;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::paper_default()
    } else {
        ExperimentScale::small()
    };
    println!(
        "evaluating copyright regurgitation across the model zoo ({} repositories)…\n",
        scale.repo_count
    );
    let result = Fig3Experiment::run_with(&scale, BenchmarkConfig::default(), 1_500);
    println!("{}", result.render_markdown());

    // Highlight the paper's headline claims.
    if let (Some(freev), Some(verigen)) = (result.row("FreeV-Llama3.1"), result.row("VeriGen")) {
        println!();
        println!(
            "FreeV violation rate {:.1}% (base {:.1}%) — the lowest of every fine-tuned model.",
            freev.measured_tuned_percent, freev.measured_base_percent
        );
        println!(
            "VeriGen-style unfiltered fine-tuning moves its base from {:.1}% to {:.1}%.",
            verigen.measured_base_percent, verigen.measured_tuned_percent
        );
    }
    println!();
    println!("machine-readable result:\n{}", to_json_string(&result.rows));
}
