//! Dataset comparison: Table I and the Figure 2 file-length distribution.
//!
//! ```text
//! cargo run --release --example dataset_comparison [--full]
//! ```
//!
//! Curates the same scrape under every prior work's policy (VeriGen,
//! RTLCoder, CodeV, BetterV, OriGen) and under the FreeSet policy, then
//! prints the Table I comparison and the Figure 2 histogram series.

use free_fair_hw::freeset::config::{ExperimentScale, FreeSetConfig};
use free_fair_hw::freeset::corpus::ScrapedCorpus;
use free_fair_hw::freeset::experiments::{fig2::Fig2Experiment, table1::Table1Experiment};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::paper_default()
    } else {
        ExperimentScale::small()
    };
    println!(
        "curating one scrape ({} repositories) under every policy…\n",
        scale.repo_count
    );
    // Share a single scrape between both experiments, exactly as the paper's
    // comparisons share one underlying corpus.
    let scraped = ScrapedCorpus::build(&FreeSetConfig::at_scale(&scale));

    let table1 = Table1Experiment::run_on(&scale, &scraped);
    println!("{}", table1.render_markdown());
    println!();

    let fig2 = Fig2Experiment::run_on(&scale, &scraped);
    println!("{}", fig2.render_markdown());

    if let Some(freeset) = table1.freeset_row() {
        println!(
            "FreeSet keeps {} files ({:.2} MB) and is the only dataset with both license and per-file copyright checks.",
            freeset.measured_rows.unwrap_or(0),
            freeset.measured_chars.unwrap_or(0) as f64 / 1e6
        );
    }
}
