//! The VerilogEval-style functional evaluation (§III-E, Table II).
//!
//! ```text
//! cargo run --release --example verilogeval_run [--full]
//! ```
//!
//! Trains the base model and FreeV, evaluates both (4-bit quantised) on the
//! built-in problem suite with the paper's protocol (temperatures 0.2/0.8,
//! best-of, stop at `endmodule`), and prints Table II with the paper's
//! reported rows alongside the measured ones.

use free_fair_hw::freeset::config::ExperimentScale;
use free_fair_hw::freeset::experiments::table2::Table2Experiment;
use free_fair_hw::verilogeval::{EvalConfig, ProblemSuite};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::paper_default()
    } else {
        ExperimentScale::small()
    };
    let suite = ProblemSuite::verilog_eval_human();
    println!(
        "evaluating {} problems, 10 samples each, at temperatures 0.2 and 0.8 ({} repositories)…\n",
        suite.len(),
        scale.repo_count
    );
    let result = Table2Experiment::run_with(&scale, suite, EvalConfig::default());
    println!("{}", result.render_markdown());

    if let Some((base, freev)) = result.measured_pair() {
        println!();
        println!(
            "measured improvement over the base model: pass@1 {:+.1}, pass@5 {:+.1}, pass@10 {:+.1} points",
            freev.pass_at.0 - base.pass_at.0,
            freev.pass_at.1 - base.pass_at.1,
            freev.pass_at.2 - base.pass_at.2,
        );
        println!("paper-reported improvement:               pass@1 +0.7, pass@5 +7.9, pass@10 +10.1 points");
    }
}
