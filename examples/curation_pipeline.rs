//! The dataset-curation pipeline, stage by stage (§III-B/C/D and §IV-A).
//!
//! ```text
//! cargo run --release --example curation_pipeline [--full]
//! ```
//!
//! Scrapes the simulated GitHub universe through the rate-limited,
//! result-capped search API, then runs the four curation stages and prints
//! the funnel next to the paper's reported numbers. `--full` runs at the
//! default (paper-shaped) scale instead of the small one.

use free_fair_hw::freeset::config::ExperimentScale;
use free_fair_hw::freeset::experiments::funnel::FunnelExperiment;
use free_fair_hw::freeset::report::to_json_string;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::paper_default()
    } else {
        ExperimentScale::small()
    };
    println!(
        "running the curation pipeline over {} simulated repositories…\n",
        scale.repo_count
    );
    let result = FunnelExperiment::run(&scale);

    println!("scraper statistics:");
    println!("  search queries issued : {}", result.scrape.queries_issued);
    println!(
        "  queries over the cap  : {}",
        result.scrape.queries_over_cap
    );
    println!(
        "  rate-limit waits      : {}",
        result.scrape.rate_limit_waits
    );
    println!(
        "  repositories cloned   : {}",
        result.scrape.repositories_cloned
    );
    println!(
        "  files seen / Verilog  : {} / {}",
        result.scrape.files_seen, result.scrape.verilog_files_extracted
    );
    println!();
    println!("universe ground truth (what was planted):");
    println!(
        "  duplicates            : {}",
        result.universe.planted_duplicates
    );
    println!(
        "  copyrighted files     : {}",
        result.universe.planted_copyright_files
    );
    println!(
        "  broken files          : {}",
        result.universe.planted_broken_files
    );
    println!();
    println!("{}", result.render_markdown());
    println!();
    println!(
        "machine-readable result:\n{}",
        to_json_string(&result.measured)
    );
}
