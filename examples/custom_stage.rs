//! Registering a custom curation stage and inspecting rejection provenance.
//!
//! ```text
//! cargo run --release --example custom_stage
//! ```
//!
//! Extends the paper's FreeSet policy with a project-specific stage (keep
//! only files that instantiate a clock) and prints the stage-keyed funnel
//! plus a per-reason breakdown of everything the pipeline removed.

use free_fair_hw::curation::{
    CurationConfig, CurationPipeline, CurationStage, FileBatch, RejectReason, StageOutcome,
};
use free_fair_hw::freeset::config::{ExperimentScale, FreeSetConfig};
use free_fair_hw::freeset::corpus::ScrapedCorpus;

/// Keeps only files that mention a clock signal — a curation dimension the
/// paper's toggle set cannot express.
struct ClockedOnly;

impl CurationStage for ClockedOnly {
    fn name(&self) -> &str {
        "clocked-only"
    }

    fn apply(&self, batch: FileBatch) -> StageOutcome {
        batch.partition("clocked-only", RejectReason::Syntax, |f| {
            f.content.contains("clk")
        })
    }
}

fn main() {
    let scraped = ScrapedCorpus::build(&FreeSetConfig::at_scale(&ExperimentScale::small()));
    println!("scraped {} files\n", scraped.len());

    let pipeline =
        CurationPipeline::new(CurationConfig::freeset()).with_stage(Box::new(ClockedOnly));
    println!("stages: {}\n", pipeline.stage_names().join(" -> "));

    let dataset = pipeline.run(scraped.files.clone());
    println!("{}\n", dataset.funnel());

    println!("rejections by reason:");
    for reason in [
        RejectReason::License,
        RejectReason::LengthCap,
        RejectReason::Duplicate,
        RejectReason::Syntax,
        RejectReason::Copyright,
    ] {
        println!(
            "  {reason:<12?}: {:>5}",
            dataset.rejects_for(reason).count()
        );
    }

    if let Some(sample) = dataset.rejects_for(RejectReason::Duplicate).next() {
        println!(
            "\nsample duplicate rejection: {} ({})",
            sample.file.path,
            sample.detail.as_deref().unwrap_or("no detail")
        );
    }
    if let Some(sample) = dataset.rejects_for(RejectReason::Copyright).next() {
        println!(
            "sample copyright rejection: {} ({})",
            sample.file.path,
            sample.detail.as_deref().unwrap_or("no detail")
        );
    }

    // Conservation: kept + rejects == scraped.
    assert_eq!(dataset.len() + dataset.rejects().len(), scraped.len());
    println!(
        "\nconservation holds: {} kept + {} rejected == {} scraped",
        dataset.len(),
        dataset.rejects().len(),
        scraped.len()
    );
}
