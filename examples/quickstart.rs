//! Quickstart: build FreeSet, train FreeV, and inspect what changed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The walk-through follows Figure 1 of the paper end to end at a small,
//! laptop-friendly scale: scrape the (simulated) GitHub universe, curate the
//! corpus with the FreeSet policy, continually pre-train a base model on it,
//! and compare the base model and FreeV on one generation prompt.

use free_fair_hw::freeset::build_freeset;
use free_fair_hw::freeset::config::{ExperimentScale, FreeSetConfig};
use free_fair_hw::freeset::freev::FreeVBuilder;
use free_fair_hw::hwlm::{perplexity, LanguageModel, SamplerConfig};
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::small();
    println!(
        "== 1. Building FreeSet (scale: {} repositories) ==",
        scale.repo_count
    );
    let build = build_freeset(&FreeSetConfig::at_scale(&scale));
    println!("{}\n", build.dataset.funnel());

    println!("== 2. Continual pre-training FreeV on the curated corpus ==");
    let corpus = build.training_corpus();
    let freev = FreeVBuilder::default().build(&build.scraped, &corpus);
    println!(
        "base model: {} | fine-tuned model: {} ({}-bit quantised at inference)",
        LanguageModel::name(freev.base()),
        LanguageModel::name(freev.tuned()),
        freev.quantization_bits()
    );
    let held_out: Vec<String> = corpus.iter().rev().take(20).cloned().collect();
    println!(
        "perplexity on held-back Verilog  base: {:.2}   FreeV: {:.2}\n",
        perplexity(freev.base(), &held_out),
        perplexity(freev.tuned(), &held_out)
    );

    println!("== 3. Prompting both models ==");
    let prompt = "module counter(input clk, input rst, input en, output reg [7:0] count);\n";
    let sampler = SamplerConfig::with_temperature(0.2);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let base_out = freev
        .quantized_base()
        .generate_text(prompt, 120, &sampler, &mut rng);
    let tuned_out = freev
        .quantized_tuned()
        .generate_text(prompt, 120, &sampler, &mut rng);
    println!("prompt:\n{prompt}");
    println!("--- base completion ---\n{base_out}\n");
    println!("--- FreeV completion ---\n{tuned_out}");
}
