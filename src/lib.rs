//! Free and Fair Hardware — a from-scratch Rust reproduction of the DAC 2025
//! paper *"Free and Fair Hardware: A Pathway to Copyright Infringement-Free
//! Verilog Generation using LLMs"*.
//!
//! This umbrella crate re-exports the workspace's crates so that examples and
//! downstream users can depend on a single package:
//!
//! * [`verilog`] — Verilog lexer/parser/syntax checker and a behavioural
//!   interpreter (the Icarus Verilog and simulation stand-in);
//! * [`textsim`] — cosine similarity, MinHash and LSH;
//! * [`gh_sim`] — the simulated GitHub universe, search API and scraper;
//! * [`curation`] — the FreeSet curation framework (license, copyright,
//!   dedup and syntax filters);
//! * [`hwlm`] — the trainable language-model substrate with adapter-based
//!   continual pre-training and 4-bit quantisation;
//! * [`verilogeval`] — the VerilogEval-style functional benchmark and
//!   pass@k;
//! * [`copyright_bench`] — the copyright-infringement benchmark;
//! * [`freeset`] — the end-to-end pipeline, model zoo and one experiment
//!   driver per table/figure of the paper.
//!
//! # Quick start
//!
//! ```
//! use freeset::config::{ExperimentScale, FreeSetConfig};
//! use freeset::build_freeset;
//!
//! // Build FreeSet at a tiny scale: generate the synthetic GitHub universe,
//! // scrape it, and run the four-stage curation pipeline.
//! let build = build_freeset(&FreeSetConfig::at_scale(&ExperimentScale::tiny()));
//! println!("{}", build.dataset.funnel());
//! assert!(build.len() > 0);
//! ```
//!
//! The runnable examples in `examples/` walk through each experiment:
//! `quickstart`, `curation_pipeline`, `copyright_audit`, `verilogeval_run`
//! and `dataset_comparison`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use copyright_bench;
pub use curation;
pub use freeset;
pub use gh_sim;
pub use hwlm;
pub use textsim;
pub use verilog;
pub use verilogeval;

/// The version of the reproduction, matching the workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
