//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for non-generic structs and enums by
//! hand-parsing the item's token stream (no `syn`/`quote` in this offline
//! environment) and emitting an `impl serde::Serialize` that builds the
//! `serde::Value` tree. `#[derive(Deserialize)]` expands to nothing: the
//! workspace never deserializes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the stub's value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("serde_derive stub emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error emission is valid Rust"),
    }
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility before the struct/enum keyword.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the #[...] bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                // `pub`, possibly followed by `(crate)` etc. — skip.
                if word == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => return Err("expected `struct` or `enum`".to_string()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub cannot derive Serialize for generic type `{name}`"
            ));
        }
    }
    if kind == "struct" {
        let fields = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => return Err(format!("unexpected struct body {other:?}")),
        };
        Ok(Item::Struct { name, fields })
    } else {
        let body = loop {
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
                Some(_) => {}
                None => return Err("expected enum body".to_string()),
            }
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Parses `[attrs] [vis] name: Type,`* returning the field names in order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes on the field.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        // Everything before the first `:` is `[pub[(..)]] name`.
        let mut last_ident = None;
        loop {
            match tokens.next() {
                Some(TokenTree::Ident(id)) => last_ident = Some(id.to_string()),
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => break,
                Some(TokenTree::Group(_)) => {} // pub(crate) etc.
                Some(other) => return Err(format!("unexpected token in field: {other}")),
                None => {
                    return match last_ident {
                        None => Ok(names), // trailing comma or empty body
                        Some(id) => Err(format!("field `{id}` has no type")),
                    };
                }
            }
        }
        names.push(last_ident.ok_or("field without a name")?);
        skip_type_until_comma(&mut tokens);
        if tokens.peek().is_none() {
            return Ok(names);
        }
    }
}

/// Consumes type tokens until a comma at angle-bracket depth 0 (the comma is
/// consumed too). Parenthesised/bracketed parts arrive as atomic groups.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the types of a tuple-struct/tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut saw_token = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found {other}")),
            None => return Ok(variants),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                tokens.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type_until_comma(&mut tokens);
        variants.push(Variant { name, fields });
        if tokens.peek().is_none() {
            return Ok(variants);
        }
    }
}

fn emit_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => object_literal(names.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            impl_block(name, &body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| variant_arm(name, v)).collect();
            impl_block(name, &format!("match self {{ {} }}", arms.join(" ")))
        }
    }
}

fn variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => {
            format!("{enum_name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),")
        }
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            };
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                binders.join(", ")
            )
        }
        Fields::Named(names) => {
            let inner = object_literal(
                names
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})"))),
            );
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                names.join(", ")
            )
        }
    }
}

fn object_literal(entries: impl Iterator<Item = (String, String)>) -> String {
    let fields: Vec<String> = entries
        .map(|(key, value)| format!("({key:?}.to_string(), {value})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", fields.join(", "))
}

fn impl_block(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}
