//! Offline stand-in for `rayon`.
//!
//! Implements the small parallel-iterator subset the workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `map(...).collect()` — on top
//! of `std::thread::scope`. Items are split into one contiguous chunk per
//! worker and results are reassembled in chunk order, so `collect` output is
//! always in input order regardless of thread scheduling (the property the
//! curation pipeline's serial/parallel equivalence relies on).

use std::num::NonZeroUsize;

pub mod prelude {
    //! Traits to bring parallel-iterator methods into scope.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Number of worker threads used by parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        (ra, handle.join().expect("rayon stub: join worker panicked"))
    })
}

/// An eager parallel iterator over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item in parallel, preserving input order, and collects.
    ///
    /// Mapping and collection are fused (this stub is eager): `map` returns a
    /// lazily-collectable handle whose only consumer is [`MappedParIter::collect`].
    pub fn map<R, F>(self, f: F) -> MappedParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MappedParIter {
            items: self.items,
            f,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]: a parallel map pending collection.
pub struct MappedParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MappedParIter<T, F> {
    /// Runs the map on a scoped thread pool and collects results in input
    /// order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Order-stable parallel map: contiguous chunks, one worker per chunk,
/// results flattened in chunk order.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let len = items.len();
    let workers = current_num_threads().min(len.max(1));
    if workers <= 1 || len < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = len.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let outputs: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stub: map worker panicked"))
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

/// Conversion into an owned parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Borrowing conversion into a parallel iterator of references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type produced.
    type Item: Send + 'a;

    /// Returns a [`ParIter`] over references to the elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
