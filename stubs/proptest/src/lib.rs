//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/macro subset the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, range / `Just` / `any` / regex-lite
//! string strategies, `prop_oneof!`, `proptest::collection::{vec, btree_set}`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros. Cases are
//! generated from a deterministic per-test RNG (no shrinking, no persistence);
//! failures report the failing assertion like an ordinary panicking test.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before the property is
    /// considered unsatisfiable.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject,
    /// `prop_assert*!` failed with the given message.
    Fail(String),
}

/// A generator of arbitrary values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy producing `T`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates a choice strategy.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String literals act as regex-lite string strategies.
///
/// Supported syntax: literal characters, `\x` escapes, `[a-z0-9_]` classes
/// and `{m}` / `{m,n}` repetition — the subset the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = match c {
            '[' => {
                let spec: Vec<char> = chars.by_ref().take_while(|&c| c != ']').collect();
                let mut class = Vec::new();
                let mut i = 0;
                while i < spec.len() {
                    // `lo-hi` range (the '-' must sit between two characters).
                    if i + 2 < spec.len() && spec[i + 1] == '-' {
                        class.extend(spec[i]..=spec[i + 2]);
                        i += 3;
                    } else {
                        class.push(spec[i]);
                        i += 1;
                    }
                }
                class
            }
            '\\' => vec![chars.next().unwrap_or('\\')],
            c => vec![c],
        };
        // Optional repetition.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let mut parts = spec.splitn(2, ',');
            let m: usize = parts.next().unwrap_or("1").trim().parse().unwrap_or(1);
            let n: usize = parts
                .next()
                .map(|p| p.trim().parse().unwrap_or(m))
                .unwrap_or(m);
            (m, n.max(m))
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            if alphabet.is_empty() {
                continue;
            }
            let i = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[i]);
        }
    }
    out
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::*;

    /// Size specification for collection strategies.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with *up to* the requested size
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($cfg:expr);
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!("property {} failed: {}", stringify!($name), message);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), left, right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left), stringify!($right), left
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strategy:expr),+ $(,)? ) => {
        $crate::OneOf::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_inclusive_and_exclusive(a in 3u32..10, b in 1usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![Just("a".to_string()), "[b-d]{2,3}"]) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "got {s}");
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..5, 2..6),
            set in crate::collection::btree_set(any::<u64>(), 0..10),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(set.len() < 10);
        }

        #[test]
        fn tuples_and_assume(pair in (1u32..5, any::<bool>())) {
            prop_assume!(pair.0 != 4);
            prop_assert_ne!(pair.0, 4);
            prop_assert_eq!(pair.0 < 5, true);
        }
    }

    #[test]
    fn pattern_generator_handles_escapes() {
        let mut rng = crate::test_runner::TestRng::deterministic("pattern");
        use crate::Strategy;
        for _ in 0..50 {
            let s = "[a-z]{2,4} \\+ [0-9]{1,2};".generate(&mut rng);
            let chars: Vec<char> = s.chars().collect();
            assert!(s.ends_with(';'), "got {s}");
            assert!(s.contains(" + "), "got {s}");
            assert!(chars[0].is_ascii_lowercase());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
