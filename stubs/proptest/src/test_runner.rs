//! The deterministic RNG driving case generation.

/// A SplitMix64 generator seeded from the property's name, so every property
/// sees a reproducible but distinct input stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a of the bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` of zero yields the full range.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            self.next_u64()
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
