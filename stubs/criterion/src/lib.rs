//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box` — with a
//! plain wall-clock harness: a short warm-up, `sample_size` timed samples,
//! and a `min / mean / max` summary line per benchmark.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
    results: Vec<Summary>,
}

struct Summary {
    name: String,
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Accepts command-line configuration (ignored by the stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name.into(), sample_size, f);
        self
    }

    /// Prints the collected summary table.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        println!("\nbenchmark summary ({} entries):", self.results.len());
        for r in &self.results {
            println!(
                "  {:<50} min {:>12?}  mean {:>12?}  max {:>12?}",
                r.name, r.min, r.mean, r.max
            );
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        let samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        let min = *samples.iter().min().expect("non-empty samples");
        let max = *samples.iter().max().expect("non-empty samples");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!("{name:<60} time: [{min:?} {mean:?} {max:?}]");
        self.results.push(Summary {
            name,
            min,
            mean,
            max,
        });
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full_name = format!("{}/{}", self.name, name.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full_name, sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_records() {
        let mut criterion = Criterion::default().configure_from_args();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert_eq!(criterion.results.len(), 1);
        assert_eq!(criterion.results[0].name, "demo/count");
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
        criterion.final_summary();
    }

    #[test]
    fn top_level_bench_function_works() {
        let mut criterion = Criterion::default();
        criterion.bench_function("x", |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(criterion.results.len(), 1);
    }
}
