//! Offline stand-in for `serde_json`: renders the [`serde`] stub's value
//! tree as JSON text. Only serialization is supported.

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error (never produced by this stub; kept for API parity).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            items.len(),
            ('[', ']'),
            indent,
            level,
            out,
            |item, out, lvl| {
                write_value(item, indent, lvl, out);
            },
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            entries.len(),
            ('{', '}'),
            indent,
            level,
            out,
            |(k, v), out, lvl| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, lvl, out);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    (open, close): (char, char),
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            ("x".to_string(), Value::UInt(7)),
            (
                "list".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let pretty = to_string_pretty(&Wrap(v.clone())).unwrap();
        assert!(pretty.contains("\"x\": 7"));
        let compact = to_string(&Wrap(v)).unwrap();
        assert_eq!(compact, "{\"x\":7,\"list\":[true,null]}");
    }
}
