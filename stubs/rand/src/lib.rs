//! Offline stand-in for `rand` (the 0.8 API subset this workspace uses).
//!
//! Provides [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] (`seed_from_u64` only) and
//! [`seq::SliceRandom`] (`choose`, `shuffle`). Distribution quality matches
//! what the simulation needs: 53-bit uniform floats and modulo-reduced
//! integers (the ranges involved are far too small for the bias to matter).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        uniform_f64(self) < p
    }

    /// Samples a value of a standard-distribution type (`f64` in `[0, 1)`,
    /// full-range integers, a fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (uniform_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (uniform_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related sampling (the `rand::seq` subset in use).
pub mod seq {
    use super::RngCore;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=16);
            assert!((1..=16).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = SplitMix(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn slice_helpers_work() {
        let mut rng = SplitMix(5);
        let mut values: Vec<u32> = (0..50).collect();
        assert!(values.choose(&mut rng).is_some());
        let before = values.clone();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, before);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
