//! Offline stand-in for `rand_chacha`, implementing a genuine ChaCha8 stream
//! cipher as an RNG. Output does not bit-match the upstream crate (the
//! workspace never relies on specific streams, only on determinism and
//! statistical quality), but the keystream is real ChaCha with 8 rounds.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream-cipher random generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

impl ChaCha8Rng {
    fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // Words 12..14 are the block counter, 14..16 the nonce (zero).
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }

    fn quarter_round(block: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        block[a] = block[a].wrapping_add(block[b]);
        block[d] = (block[d] ^ block[a]).rotate_left(16);
        block[c] = block[c].wrapping_add(block[d]);
        block[b] = (block[b] ^ block[c]).rotate_left(12);
        block[a] = block[a].wrapping_add(block[b]);
        block[d] = (block[d] ^ block[a]).rotate_left(8);
        block[c] = block[c].wrapping_add(block[d]);
        block[b] = (block[b] ^ block[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut block = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            Self::quarter_round(&mut block, 0, 4, 8, 12);
            Self::quarter_round(&mut block, 1, 5, 9, 13);
            Self::quarter_round(&mut block, 2, 6, 10, 14);
            Self::quarter_round(&mut block, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut block, 0, 5, 10, 15);
            Self::quarter_round(&mut block, 1, 6, 11, 12);
            Self::quarter_round(&mut block, 2, 7, 8, 13);
            Self::quarter_round(&mut block, 3, 4, 9, 14);
        }
        for (out, (mixed, input)) in self
            .buffer
            .iter_mut()
            .zip(block.iter().zip(self.state.iter()))
        {
            *out = mixed.wrapping_add(*input);
        }
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Expands a 64-bit seed into the 256-bit key with SplitMix64 (the same
    /// construction `rand`'s `seed_from_u64` uses).
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = next();
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        Self::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64k bits, expect ~32k ones; allow generous slack.
        assert!((30_000..34_000).contains(&ones), "ones {ones}");
        let mean: f64 = (0..1000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 1000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
