//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal serialization framework under the `serde` name. It supports the
//! subset the repository uses: `#[derive(Serialize, Deserialize)]` on plain
//! (non-generic) structs and enums, and value-tree serialization consumed by
//! the sibling `serde_json` stub. `Deserialize` derives are accepted and
//! expand to nothing (nothing in the workspace deserializes).

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the stand-in for serde's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Map with ordered keys (struct fields keep declaration order).
    Object(Vec<(String, Value)>),
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait so `use serde::{Deserialize, Serialize}` keeps working in the
/// type namespace; no deserialization is implemented.
pub trait Deserialize {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
